"""Real-tensor ingestion: Matrix Market (.mtx) and FROSTT (.tns) readers.

Both formats are line-oriented text; parsing goes through numpy
(``np.loadtxt`` over the data body) so million-nnz operands load in
seconds and feed straight into the vectorized
:meth:`~repro.formats.tensor.FiberTensor.from_coords` pipeline without a
per-entry Python loop.  ``.gz``-compressed files are handled
transparently.

Matrix Market support covers the coordinate and array formats, the
``real``/``integer``/``pattern`` fields, and the ``general``/
``symmetric``/``skew-symmetric`` symmetries (complex/hermitian matrices
are rejected — the simulator's value arrays are float64).  FROSTT ``.tns``
files are whitespace-separated ``i j k ... value`` lines, 1-indexed, with
``#`` comments; the shape is inferred from the data unless given.
"""

from __future__ import annotations

import gzip
import io
import os
import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..formats.tensor import dense_nonzeros, segment_offsets


@dataclass(frozen=True)
class CooTensor:
    """Parsed COO data: the common currency of the readers.

    ``coords`` is ``(nnz, order)`` int64, zero-indexed; ``values`` is
    float64.  Use :meth:`to_fibertensor` (or ``scipy.sparse``) downstream.

    ``field`` carries the Matrix Market value field the data came from
    (``"real"``, ``"integer"`` or ``"pattern"``) so a read→write round
    trip preserves it; data built from numpy/scipy infers ``"integer"``
    from an integer dtype.
    """

    shape: Tuple[int, ...]
    coords: np.ndarray
    values: np.ndarray
    field: str = "real"

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def to_fibertensor(self, formats=None, mode_order=None, name: str = "T",
                       keep_zeros: bool = False):
        from ..formats.tensor import FiberTensor

        return FiberTensor.from_coords(
            self.shape, self.coords, self.values, formats=formats,
            mode_order=mode_order, name=name, keep_zeros=keep_zeros,
        )

    def to_scipy(self):
        """As a ``scipy.sparse.csr_matrix`` (matrices only)."""
        from scipy import sparse

        if self.order != 2:
            raise ValueError(f"to_scipy needs a matrix, got order {self.order}")
        return sparse.csr_matrix(
            (self.values, (self.coords[:, 0], self.coords[:, 1])),
            shape=self.shape,
        )


def _open_text(path: str):
    # latin-1, not ascii: data lines are ASCII per both specs, but real
    # SuiteSparse/FROSTT headers carry free-form comment bytes (author
    # names etc.) that must not abort the load.
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="latin-1")
    return open(path, "r", encoding="latin-1")


def _loadtxt(handle, comments: str) -> np.ndarray:
    with warnings.catch_warnings():
        warnings.filterwarnings("ignore", message=".*no data.*")
        return np.loadtxt(handle, ndmin=2, comments=comments)


def _load_body(handle, min_cols: int) -> np.ndarray:
    """Parse the remaining lines into a 2-D float array (possibly empty)."""
    data = _loadtxt(handle, comments="%")
    if data.size == 0:
        return np.empty((0, min_cols))
    return data


def read_mtx(path: str) -> CooTensor:
    """Read a Matrix Market file into zero-indexed COO form."""
    with _open_text(path) as handle:
        header = handle.readline().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket":
            raise ValueError(f"{path}: missing %%MatrixMarket header")
        obj, fmt, field, symmetry = (token.lower() for token in header[1:5])
        if obj != "matrix":
            raise ValueError(f"{path}: unsupported object {obj!r}")
        if field in ("complex", "hermitian") or symmetry == "hermitian":
            raise ValueError(f"{path}: complex matrices are not supported")
        line = handle.readline()
        while line and (line.lstrip().startswith("%") or not line.strip()):
            line = handle.readline()
        sizes = line.split()
        if len(sizes) < (3 if fmt == "coordinate" else 2):
            raise ValueError(f"{path}: malformed size line {line!r}")

        if fmt == "coordinate":
            rows, cols, nnz = (int(s) for s in sizes[:3])
            body = _load_body(handle, 2 if field == "pattern" else 3)
            if body.shape[0] != nnz:
                raise ValueError(
                    f"{path}: header promises {nnz} entries, found {body.shape[0]}"
                )
            coords = body[:, :2].astype(np.int64) - 1
            if field == "pattern":
                values = np.ones(body.shape[0], dtype=np.float64)
            else:
                values = body[:, 2].astype(np.float64)
        elif fmt == "array":
            rows, cols = (int(s) for s in sizes[:2])
            body = _load_body(handle, 1).reshape(-1)
            if symmetry in ("symmetric", "skew-symmetric"):
                # Array symmetric files store the lower triangle by column
                # (strictly lower for skew-symmetric: the diagonal is zero
                # by definition and not stored).
                dense = np.zeros((rows, cols))
                first = 1 if symmetry == "skew-symmetric" else 0
                # Column-major (strictly-)lower-triangle indices, vectorized.
                col_idx = np.arange(cols, dtype=np.int64)
                counts = np.maximum(rows - (col_idx + first), 0)
                c_rep = np.repeat(col_idx, counts)
                r_idx = c_rep + first + segment_offsets(counts)
                if body.size != r_idx.size:
                    raise ValueError(f"{path}: triangular array size mismatch")
                dense[r_idx, c_rep] = body
            else:
                if body.size != rows * cols:
                    raise ValueError(
                        f"{path}: array body has {body.size} values, "
                        f"expected {rows * cols}"
                    )
                # Array files list values column-major.
                dense = body.reshape((cols, rows)).T
            coords, values = dense_nonzeros(dense)
        else:
            raise ValueError(f"{path}: unsupported format {fmt!r}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = coords[:, 0] != coords[:, 1]
        if symmetry == "skew-symmetric" and np.any(
            (~off_diag) & (values != 0)
        ):
            raise ValueError(f"{path}: skew-symmetric matrix with nonzero diagonal")
        mirror = coords[off_diag][:, ::-1]
        mirror_vals = values[off_diag]
        if symmetry == "skew-symmetric":
            mirror_vals = -mirror_vals
        coords = np.concatenate([coords, mirror])
        values = np.concatenate([values, mirror_vals])
    elif symmetry != "general":
        raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

    _validate_coords(path, coords, (rows, cols))
    return CooTensor((rows, cols), coords, values, field=field)


def read_tns(path: str, shape: Optional[Sequence[int]] = None) -> CooTensor:
    """Read a FROSTT ``.tns`` file (1-indexed ``i j k ... value`` lines).

    An optional ``# shape: I J K`` comment (as written by
    :func:`write_tns`) pins the shape; otherwise it is inferred from the
    per-mode coordinate maxima unless *shape* is given explicitly.
    """
    with _open_text(path) as handle:
        header_shape = None
        # Scan every leading comment line for a shape annotation, then
        # rewind to the first data line.
        position = handle.tell()
        line = handle.readline()
        while line and line.lstrip().startswith("#"):
            if header_shape is None and "shape:" in line:
                header_shape = tuple(
                    int(s) for s in line.split("shape:", 1)[1].split()
                )
            position = handle.tell()
            line = handle.readline()
        handle.seek(position)
        data = _loadtxt(handle, comments="#")
    if shape is None:
        shape = header_shape
    if data.size == 0:
        if shape is None:
            raise ValueError(f"{path}: empty .tns file needs an explicit shape=")
        order = len(shape)
        coords = np.empty((0, order), dtype=np.int64)
        values = np.empty(0)
    else:
        if data.shape[1] < 2:
            raise ValueError(f"{path}: .tns lines need coordinates and a value")
        coords = data[:, :-1].astype(np.int64) - 1
        values = data[:, -1].astype(np.float64)
    if shape is None:
        shape = tuple(int(m) + 1 for m in coords.max(axis=0))
    else:
        shape = tuple(int(s) for s in shape)
        if coords.shape[1] != len(shape):
            raise ValueError(
                f"{path}: data has order {coords.shape[1]}, shape= has {len(shape)}"
            )
    _validate_coords(path, coords, shape)
    return CooTensor(shape, coords, values)


def _validate_coords(path, coords: np.ndarray, shape: Sequence[int]) -> None:
    if coords.size and (
        (coords < 0).any() or (coords >= np.asarray(shape, dtype=np.int64)).any()
    ):
        raise ValueError(f"{path}: coordinates outside shape {tuple(shape)}")


def _open_write(path: str):
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "wb"), encoding="ascii")
    return open(path, "w", encoding="ascii")


#: Matrix Market value fields the writer (and reader) support
MTX_FIELDS = ("real", "integer", "pattern")
MTX_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def _check_symmetry(coo: CooTensor, symmetry: str) -> np.ndarray:
    """Validate *coo* against *symmetry*; returns the stored-entry mask.

    Symmetric matrices store the lower triangle (``i >= j``),
    skew-symmetric ones the strictly lower triangle (their diagonal is
    zero by definition).  Entries must mirror exactly — value-for-value,
    sign-flipped for skew — or a ``ValueError`` explains the offender.
    """
    i, j = coo.coords[:, 0], coo.coords[:, 1]
    values = coo.values
    order = np.lexsort((j, i))
    mirror = np.lexsort((i, j))
    want = values[mirror] if symmetry == "symmetric" else -values[mirror]
    if (
        not np.array_equal(i[order], j[mirror])
        or not np.array_equal(j[order], i[mirror])
        or not np.array_equal(values[order], want)
    ):
        raise ValueError(
            f"matrix is not {symmetry}: entries do not mirror across the "
            f"diagonal (write with symmetry='general' to store it expanded)"
        )
    if symmetry == "skew-symmetric" and np.any((i == j) & (values != 0)):
        raise ValueError("skew-symmetric matrix with nonzero diagonal")
    if symmetry == "skew-symmetric":
        return i > j
    return i >= j


def write_mtx(
    path: str,
    data,
    comment: str = "",
    field: Optional[str] = None,
    symmetry: str = "general",
) -> str:
    """Write a matrix as coordinate Matrix Market (``.gz`` supported).

    *data* may be a :class:`CooTensor`, a scipy sparse matrix, or a dense
    numpy matrix.  ``field`` defaults to what the data carries: a
    :class:`CooTensor`'s :attr:`~CooTensor.field` (so a read→write round
    trip preserves ``integer``/``pattern``), or ``integer`` for
    integer-dtype numpy/scipy input.  ``symmetry="symmetric"`` /
    ``"skew-symmetric"`` verifies the mirror property and stores only the
    (strictly) lower triangle; the default ``"general"`` stores every
    entry expanded.  Returns *path* (handy for the dataset registry).
    """
    coo = _as_coo(data)
    if coo.order != 2:
        raise ValueError(f"write_mtx needs a matrix, got order {coo.order}")
    if field is None:
        field = coo.field
    if field not in MTX_FIELDS:
        raise ValueError(f"unsupported field {field!r} (choose from {MTX_FIELDS})")
    if symmetry not in MTX_SYMMETRIES:
        raise ValueError(
            f"unsupported symmetry {symmetry!r} (choose from {MTX_SYMMETRIES})"
        )
    coords, values = coo.coords, coo.values
    if field == "integer" and np.any(values != np.trunc(values)):
        raise ValueError(
            "field='integer' but the matrix holds non-integral values"
        )
    if field == "pattern" and np.any(values != 1.0):
        # A pattern file stores structure only; writing one from data
        # with real values would silently lose them on the round trip.
        raise ValueError(
            "field='pattern' but the matrix holds values other than 1 "
            "(pattern files store structure only — write with "
            "field='real' to keep the values)"
        )
    if symmetry != "general":
        keep = _check_symmetry(coo, symmetry)
        coords, values = coords[keep], values[keep]
    with _open_write(path) as handle:
        handle.write(f"%%MatrixMarket matrix coordinate {field} {symmetry}\n")
        for line in comment.splitlines():
            handle.write(f"% {line}\n")
        handle.write(f"{coo.shape[0]} {coo.shape[1]} {len(values)}\n")
        if field == "pattern":
            np.savetxt(handle, coords + 1, fmt="%d %d")
        elif field == "integer":
            body = np.column_stack([coords + 1, values.astype(np.int64)])
            np.savetxt(handle, body, fmt="%d %d %d")
        else:
            body = np.column_stack([coords + 1, values.reshape(-1, 1)])
            np.savetxt(handle, body, fmt="%d %d %.17g")
    return path


def write_tns(path: str, data) -> str:
    """Write a :class:`CooTensor` (any order) as FROSTT ``.tns`` (``.gz`` ok)."""
    coo = _as_coo(data)
    with _open_write(path) as handle:
        handle.write(f"# shape: {' '.join(str(s) for s in coo.shape)}\n")
        fmt = " ".join(["%d"] * coo.order + ["%.17g"])
        body = np.column_stack([coo.coords + 1, coo.values.reshape(-1, 1)])
        np.savetxt(handle, body, fmt=fmt)
    return path


def _as_coo(data) -> CooTensor:
    if isinstance(data, CooTensor):
        return data
    if hasattr(data, "tocoo"):  # scipy sparse
        coo = data.tocoo()
        return CooTensor(
            tuple(int(s) for s in coo.shape),
            np.column_stack([coo.row, coo.col]).astype(np.int64),
            np.asarray(coo.data, dtype=np.float64),
            field="integer" if np.asarray(coo.data).dtype.kind in "iu" else "real",
        )
    dense = np.asarray(data)
    field = "integer" if dense.dtype.kind in "iu" else "real"
    dense = dense.astype(float)
    coords, values = dense_nonzeros(dense)
    return CooTensor(dense.shape, coords, values, field=field)


def load_tensor(path: str, formats=None, mode_order=None, name: Optional[str] = None,
                shape: Optional[Sequence[int]] = None):
    """Read ``.mtx``/``.tns`` (optionally ``.gz``) into a FiberTensor."""
    stem = str(path)
    if stem.endswith(".gz"):
        stem = stem[:-3]
    if stem.endswith(".mtx"):
        coo = read_mtx(path)
    elif stem.endswith(".tns"):
        coo = read_tns(path, shape=shape)
    else:
        raise ValueError(f"unrecognised tensor file extension: {path}")
    if name is None:
        name = os.path.basename(stem).rsplit(".", 1)[0]
    return coo.to_fibertensor(formats=formats, mode_order=mode_order, name=name)

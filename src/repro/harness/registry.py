"""Study registry: one :class:`Study` per paper table/figure.

Each module under :mod:`repro.studies` exports a module-level ``STUDY``
describing how to *enumerate* its sweep points as
:class:`~repro.harness.spec.ExperimentSpec` records, *execute* a single
point into a JSON payload, and *render* a list of results back into the
paper's table/figure text.  The registry resolves study names lazily so
importing the harness does not pull in every study's dependencies.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .spec import ExperimentResult, ExperimentSpec

#: canonical study order (the paper's presentation order)
STUDY_NAMES: Tuple[str, ...] = (
    "table1", "table2", "fig11", "fig12", "fig13", "fig14", "fig15",
)


@dataclass
class Study:
    """How a study plugs into the sweep harness.

    ``enumerate_specs(backend=..., **options)`` yields the sweep points;
    unknown options are filtered out before the call so one CLI option
    set can drive several studies at once.  ``execute(spec)`` must be a
    pure function of the spec (workers run it in other processes) and
    return a JSON-serialisable payload.  ``render(results)`` produces
    the human-readable table/figure text.
    """

    name: str
    title: str
    enumerate_fn: Callable[..., List[ExperimentSpec]]
    execute_fn: Callable[[ExperimentSpec], Dict[str, Any]]
    render_fn: Callable[[List[ExperimentResult]], str]
    #: whether points run block-level simulations (and thus depend on
    #: the selected engine); compile-only/analytic studies ignore it
    uses_backend: bool = True
    #: reduced-scale option overrides for smoke runs (``--quick``)
    quick_options: Dict[str, Any] = field(default_factory=dict)

    def enumerate(self, backend: Optional[str] = None,
                  options: Optional[Dict[str, Any]] = None) -> List[ExperimentSpec]:
        """Enumerate sweep points, filtering *options* to known ones."""
        accepted = inspect.signature(self.enumerate_fn).parameters
        kwargs = {
            key: value for key, value in (options or {}).items() if key in accepted
        }
        if self.uses_backend:
            from ..sim.backends import resolve_backend

            kwargs["backend"] = resolve_backend(backend)
        return list(self.enumerate_fn(**kwargs))

    def execute(self, spec: ExperimentSpec) -> Dict[str, Any]:
        return self.execute_fn(spec)

    def render(self, results: List[ExperimentResult]) -> str:
        return self.render_fn(results)


def get_study(name: str) -> Study:
    """Resolve a study name to its ``STUDY`` descriptor."""
    if name not in STUDY_NAMES:
        raise KeyError(f"unknown study {name!r}; choose from {list(STUDY_NAMES)}")
    module = importlib.import_module(f"repro.studies.{name}")
    return module.STUDY


def all_studies() -> List[Study]:
    return [get_study(name) for name in STUDY_NAMES]


def execute_spec(spec: ExperimentSpec) -> Dict[str, Any]:
    """Execute one spec via its study (the worker-side entry point)."""
    return get_study(spec.study).execute(spec)

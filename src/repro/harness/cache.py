"""Content-hashed on-disk result cache.

Layout: one JSON file per result at ``<root>/<study>/<key>.json`` where
``key`` hashes the canonical spec, the backend, and the code version
(:func:`repro.harness.spec.code_version`).  A sweep interrupted halfway
leaves every completed point on disk; the next run loads them as hits
and only executes the remainder — that is the whole resume story, there
is no separate journal.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterator, Optional

from .spec import ExperimentResult, ExperimentSpec, _json_default, code_version

#: environment override for the default cache directory
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: default cache location (relative to the working directory)
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV_VAR) or DEFAULT_CACHE_DIR


class ResultCache:
    """Directory of cached :class:`ExperimentResult` records."""

    def __init__(self, root: Optional[str] = None, version: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.version = version or code_version()

    def path(self, spec: ExperimentSpec) -> str:
        return os.path.join(self.root, spec.study, spec.key(self.version) + ".json")

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return os.path.exists(self.path(spec))

    def load(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """The cached result for *spec*, or None on a miss.

        Unreadable/corrupt entries (e.g. a write cut short by a crash
        that bypassed the atomic rename) count as misses.
        """
        path = self.path(spec)
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        result = ExperimentResult.from_dict(data, cached=True)
        result.code_version = self.version
        return result

    def store(self, result: ExperimentResult) -> str:
        """Persist *result*; atomic via temp-file + rename."""
        result.code_version = self.version
        path = self.path(result.spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(result.to_dict(), handle, indent=1, sort_keys=True,
                          default=_json_default)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def evict(self, spec: ExperimentSpec) -> bool:
        """Remove one cached entry; returns whether it existed."""
        path = self.path(spec)
        if os.path.exists(path):
            os.unlink(path)
            return True
        return False

    def iter_entries(self, study: Optional[str] = None) -> Iterator[ExperimentResult]:
        """All readable cached results (optionally for one study)."""
        if not os.path.isdir(self.root):
            return
        studies = [study] if study else sorted(os.listdir(self.root))
        for name in studies:
            study_dir = os.path.join(self.root, name)
            if not os.path.isdir(study_dir):
                continue
            for filename in sorted(os.listdir(study_dir)):
                if not filename.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(study_dir, filename)) as handle:
                        yield ExperimentResult.from_dict(json.load(handle), cached=True)
                except (OSError, json.JSONDecodeError):
                    continue

    def size(self, study: Optional[str] = None) -> int:
        return sum(1 for _ in self.iter_entries(study))

    def prune_stale(self) -> int:
        """Delete entries written under other code versions.

        Keys embed the code version, so every source edit orphans the
        previous sweep's files; this reclaims them (``sweep --prune``).
        Returns the number of files removed.
        """
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for study in sorted(os.listdir(self.root)):
            study_dir = os.path.join(self.root, study)
            if not os.path.isdir(study_dir):
                continue
            for filename in sorted(os.listdir(study_dir)):
                path = os.path.join(study_dir, filename)
                if not filename.endswith(".json"):
                    continue
                try:
                    with open(path) as handle:
                        version = json.load(handle).get("code_version")
                except (OSError, json.JSONDecodeError):
                    version = None
                if version != self.version:
                    os.unlink(path)
                    removed += 1
        return removed

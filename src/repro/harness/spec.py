"""Experiment records: durable, replayable sweep points.

Every study sweep point is described by an :class:`ExperimentSpec` — the
study name, a JSON-serialisable parameter dict, and the simulation
backend it runs under — and produces an :class:`ExperimentResult`, a
plain-data record that can be cached on disk, reloaded, and re-rendered
into the paper's tables and figures without re-simulating.

Cache keys are content hashes over the canonical spec JSON, the backend,
and a *code version* (a digest of the ``repro`` package sources), so a
cached result is only ever reused when the inputs *and* the simulator
that produced it are unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

#: environment override for the code-version digest (tests use this to
#: force cache hits/misses without editing sources)
CODE_VERSION_ENV_VAR = "REPRO_CODE_VERSION"

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Digest of every ``.py`` file in the ``repro`` package.

    Computed once per process; override with ``$REPRO_CODE_VERSION``.
    Editing any source file changes the digest, invalidating previously
    cached results — stale simulator output is never replayed.
    """
    global _code_version_cache
    override = os.environ.get(CODE_VERSION_ENV_VAR)
    if override:
        return override
    if _code_version_cache is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, _, filenames in sorted(os.walk(package_root)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def _json_default(value: Any):
    """Coerce numpy scalar/array types to native Python for JSON.

    Sweep axes built with ``np.linspace``/``np.arange`` put ``np.int64``/
    ``np.float64`` scalars into spec points; those must canonicalise to
    the same JSON as their native equivalents (so cache keys match) and
    must not crash serialisation.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"Object of type {type(value).__name__} is not JSON serializable"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance.

    Numpy scalars and arrays are coerced to native Python types, so spec
    points produced by ``np.linspace``/``np.arange`` sweeps canonicalise
    identically to hand-written ints/floats.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=_json_default)


def as_tuple(value: Any) -> tuple:
    """Normalise a sweep-axis option to a tuple (scalars become 1-tuples,
    so ``--opt k_sweep=1`` works the same as ``--opt k_sweep=1,10``)."""
    if isinstance(value, tuple):
        return value
    if isinstance(value, (list, range)):
        return tuple(value)
    return (value,)


@dataclass(frozen=True)
class ExperimentSpec:
    """One sweep point: study name + parameters + backend.

    ``point`` must be JSON-serialisable (numbers, strings, lists, dicts)
    so the spec round-trips through worker processes and the on-disk
    cache.  Studies that do not run block-level simulations (table1,
    table2, fig15) use the ``"-"`` backend sentinel so switching
    ``--engine`` does not spuriously invalidate their cached results.
    """

    study: str
    point: Dict[str, Any] = field(default_factory=dict)
    backend: str = "-"

    def canonical(self) -> str:
        return canonical_json(
            {"study": self.study, "point": self.point, "backend": self.backend}
        )

    def key(self, version: Optional[str] = None) -> str:
        """Content-hash cache key: spec + backend + code version."""
        version = code_version() if version is None else version
        digest = hashlib.sha256()
        digest.update(self.canonical().encode())
        digest.update(version.encode())
        return digest.hexdigest()[:24]

    def label(self) -> str:
        """Short human-readable tag for logs and progress output."""
        parts = ",".join(f"{k}={v}" for k, v in sorted(self.point.items()))
        return f"{self.study}[{parts}]"

    def to_dict(self) -> Dict[str, Any]:
        return {"study": self.study, "point": self.point, "backend": self.backend}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        return cls(
            study=data["study"],
            point=dict(data["point"]),
            backend=data.get("backend", "-"),
        )


@dataclass
class ExperimentResult:
    """The durable output of executing one :class:`ExperimentSpec`.

    ``payload`` is the study-specific measurement dict (cycles, counts,
    breakdowns, ...); it must be JSON-serialisable.  ``elapsed_s`` is
    the wall-clock time of the execution that produced the payload; a
    cache replay keeps the original value and is marked ``cached=True``.
    """

    spec: ExperimentSpec
    payload: Dict[str, Any]
    elapsed_s: float = 0.0
    code_version: str = ""
    cached: bool = False

    @property
    def key(self) -> str:
        return self.spec.key(self.code_version or None)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "payload": self.payload,
            "elapsed_s": self.elapsed_s,
            "code_version": self.code_version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], cached: bool = False) -> "ExperimentResult":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            payload=data["payload"],
            elapsed_s=data.get("elapsed_s", 0.0),
            code_version=data.get("code_version", ""),
            cached=cached,
        )

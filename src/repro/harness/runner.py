"""Sharded sweep runner: fan sweep points out across worker processes.

The runner takes a list of :class:`ExperimentSpec` records, replays the
cached ones, shards the misses across a ``multiprocessing`` pool, and
persists every completed point immediately — so an interrupted sweep
resumes from where it stopped, and a repeated sweep is pure cache
replay.  Results come back in spec order regardless of worker count;
point execution is seeded and independent, so ``--jobs 1`` and
``--jobs N`` produce bit-identical payloads.
"""

from __future__ import annotations

import csv
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .spec import ExperimentResult, ExperimentSpec


def _execute_worker(task: Tuple[int, Dict[str, Any]]) -> Tuple[int, Dict[str, Any], float]:
    """Worker-side entry: rebuild the spec, run it, time it."""
    from .registry import execute_spec

    index, spec_dict = task
    spec = ExperimentSpec.from_dict(spec_dict)
    start = time.perf_counter()
    payload = execute_spec(spec)
    return index, payload, time.perf_counter() - start


def _pool_context():
    """Prefer fork (cheap, inherits sys.path); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _warm_jit() -> None:
    """Precompile the JIT kernels once, outside any timed point.

    ``@njit(cache=True)`` persists machine code on disk, so the first
    sweep worker pays the compile and every later worker (and later
    sweep) loads it back; point timings never include compile time.
    No-op without numba.
    """
    try:
        from ..jit import warmup

        warmup()
    except Exception:
        pass


@dataclass
class SweepReport:
    """Outcome of one :meth:`SweepRunner.run` call."""

    results: List[ExperimentResult] = field(default_factory=list)
    hits: int = 0
    executed: int = 0
    elapsed_s: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        return (
            f"{self.total} points: {self.hits} cached, {self.executed} executed "
            f"in {self.elapsed_s:.2f}s"
        )


class SweepRunner:
    """Execute sweep points with caching and process-level sharding.

    ``jobs=1`` runs in-process (no pool overhead, easiest to debug);
    ``jobs>1`` shards cache misses across a worker pool.  ``force=True``
    ignores (and overwrites) cached entries.  ``cache=None`` disables
    persistence entirely.
    """

    def __init__(self, cache: Optional[ResultCache] = None, jobs: int = 1,
                 force: bool = False):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.jobs = jobs
        self.force = force

    def run(self, specs: Sequence[ExperimentSpec]) -> SweepReport:
        start = time.perf_counter()
        report = SweepReport(results=[None] * len(specs))
        pending: List[Tuple[int, ExperimentSpec]] = []
        for index, spec in enumerate(specs):
            cached = None
            if self.cache is not None and not self.force:
                cached = self.cache.load(spec)
            if cached is not None:
                report.results[index] = cached
                report.hits += 1
            else:
                pending.append((index, spec))

        if pending:
            for index, result in self._execute(pending):
                if self.cache is not None:
                    self.cache.store(result)
                report.results[index] = result
                report.executed += 1

        report.elapsed_s = time.perf_counter() - start
        return report

    def _execute(self, pending: List[Tuple[int, ExperimentSpec]]):
        if self.jobs == 1 or len(pending) == 1:
            from .registry import execute_spec

            _warm_jit()
            for index, spec in pending:
                begin = time.perf_counter()
                payload = execute_spec(spec)
                elapsed = time.perf_counter() - begin
                yield index, ExperimentResult(spec, payload, elapsed_s=elapsed)
            return

        ctx = _pool_context()
        jobs = min(self.jobs, len(pending))
        specs = dict(pending)
        tasks = [(index, spec.to_dict()) for index, spec in pending]
        with ctx.Pool(processes=jobs, initializer=_warm_jit) as pool:
            # Collect in completion order so every finished point reaches
            # the caller (and the cache) immediately; an interrupt loses
            # at most the points still in flight.
            for index, payload, elapsed in pool.imap_unordered(_execute_worker, tasks):
                yield index, ExperimentResult(specs[index], payload, elapsed_s=elapsed)


def _flatten(payload: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Flatten nested payload dicts into dotted CSV column names."""
    flat: Dict[str, Any] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{name}."))
        elif isinstance(value, (list, tuple)):
            flat[name] = ";".join(str(v) for v in value)
        else:
            flat[name] = value
    return flat


def write_json_artifact(results: Sequence[ExperimentResult], path: str) -> str:
    """Write results as a JSON array of result records."""
    import json

    from .spec import _json_default

    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump([r.to_dict() for r in results], handle, indent=1,
                  sort_keys=True, default=_json_default)
    return path


def write_csv_artifact(results: Sequence[ExperimentResult], path: str) -> str:
    """Write results as CSV: spec point columns + flattened payload."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    rows = []
    for result in results:
        row = {"study": result.spec.study, "backend": result.spec.backend}
        row.update(_flatten(dict(result.spec.point)))
        row.update(_flatten(result.payload))
        rows.append(row)
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path

"""Sharded experiment harness with content-hashed result caching.

The pieces (see ``docs/architecture.md`` for the full picture):

* :mod:`~repro.harness.spec` — :class:`ExperimentSpec` (study name +
  parameter dict + backend) and :class:`ExperimentResult` (a durable
  JSON payload per point), keyed by a content hash that includes a
  digest of the package sources;
* :mod:`~repro.harness.cache` — :class:`ResultCache`, one JSON file per
  completed point, atomic writes, resume-by-construction;
* :mod:`~repro.harness.runner` — :class:`SweepRunner`, which replays
  hits and shards misses across ``multiprocessing`` workers, plus
  JSON/CSV artifact writers;
* :mod:`~repro.harness.registry` — the :class:`Study` descriptors that
  every module under :mod:`repro.studies` exports as ``STUDY``.

CLI: ``repro sweep <study ...> --jobs N`` executes and caches,
``repro report <study ...>`` renders the paper tables/figures from the
cached records (see ``EXPERIMENTS.md``).
"""

from .cache import CACHE_DIR_ENV_VAR, DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from .registry import STUDY_NAMES, Study, all_studies, execute_spec, get_study
from .runner import (
    SweepReport,
    SweepRunner,
    write_csv_artifact,
    write_json_artifact,
)
from .spec import (
    CODE_VERSION_ENV_VAR,
    ExperimentResult,
    ExperimentSpec,
    code_version,
)

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CODE_VERSION_ENV_VAR",
    "DEFAULT_CACHE_DIR",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultCache",
    "STUDY_NAMES",
    "Study",
    "SweepReport",
    "SweepRunner",
    "all_studies",
    "code_version",
    "default_cache_dir",
    "execute_spec",
    "get_study",
    "write_csv_artifact",
    "write_json_artifact",
]

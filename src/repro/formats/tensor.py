"""FiberTensor: a multidimensional tensor as a fibertree (paper section 3.1).

A :class:`FiberTensor` is a list of levels (one per dimension, in storage
order) plus a flat value array.  Composing the per-level formats yields
the classic sparse formats:

* all-compressed matrix               -> DCSR (Figure 1c)
* dense outer + compressed inner      -> CSR
* all-dense                           -> a plain dense array
* all-compressed higher-order tensor  -> CSF
* compressed + bitvector              -> the section 4.3 bitmask format

``mode_order`` maps storage levels to logical dimensions, so a transposed
matrix is just the same data with ``mode_order=(1, 0)`` — the format
language of section 5 (``C=({comp., comp.}, {mode1, mode0})``).

Construction is fully vectorized: COO input is validated, permuted,
lexsorted and deduplicated with numpy, and every level's segment/
coordinate (or word) arrays fall out of segment-boundary masks — no
per-entry Python loops, so million-nnz operands build in ~100ms.  The
pre-vectorization pure-Python pipeline is kept as
:meth:`FiberTensor.from_coords_reference`, serving as a differential-
testing oracle and as the baseline for ``benchmarks/bench_formats.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bitvector import BitvectorLevel
from .compressed import CompressedLevel
from .dense import DenseLevel
from .level import Level

FORMAT_NAMES = ("compressed", "dense", "bitvector")


def dense_nonzeros(array) -> Tuple[np.ndarray, np.ndarray]:
    """``(coords, values)`` of a dense array's nonzero entries.

    ``coords`` is ``(n, ndim)`` int64 in C order — the one shared
    dense-to-COO extraction used by :meth:`FiberTensor.from_numpy` and
    the ``.mtx`` readers (note ``nz.size``, not ``len(nz)``: an empty
    result still carries the dimension count).
    """
    array = np.asarray(array, dtype=float)
    nz = np.argwhere(array != 0)
    values = array[tuple(nz.T)] if nz.size else np.empty(0)
    return nz.astype(np.int64, copy=False), values


def segment_offsets(counts: np.ndarray) -> np.ndarray:
    """Within-segment offsets ``[0..c0), [0..c1), ...`` for ragged expansion.

    For ``counts = [2, 3]`` returns ``[0, 1, 0, 1, 2]`` — the vectorized
    building block for expanding per-fiber counts into flat positions
    (used by :meth:`FiberTensor.to_coo` and the ``.mtx`` array reader).
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    return np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )


def _coerce_coo(
    shape: Tuple[int, ...],
    coords: Sequence[Sequence[int]],
    values: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """(n, order) int64 coordinates + (n,) float64 values, validated."""
    order = len(shape)
    coords_arr = np.asarray(coords, dtype=np.int64)
    values_arr = np.asarray(values, dtype=np.float64).reshape(-1)
    if coords_arr.ndim != 2 and coords_arr.size == 0:
        # An empty coords list arrives as shape (0,); note an order-0
        # tensor's entries already parse as (n, 0) and keep their count.
        coords_arr = coords_arr.reshape(0, order)
    if coords_arr.ndim != 2 or coords_arr.shape[1] != order:
        raise ValueError(
            f"coords must be (n, {order}) for a shape-{shape} tensor, "
            f"got array of shape {coords_arr.shape}"
        )
    if coords_arr.shape[0] != values_arr.size:
        raise ValueError(
            f"{coords_arr.shape[0]} coordinates but {values_arr.size} values"
        )
    if coords_arr.size:
        shape_arr = np.asarray(shape, dtype=np.int64)
        bad = (coords_arr < 0) | (coords_arr >= shape_arr)
        if bad.any():
            entry, axis = map(int, np.argwhere(bad)[0])
            raise ValueError(
                f"coordinate {tuple(coords_arr[entry].tolist())} at entry "
                f"{entry} is outside shape {shape}: axis {axis} value "
                f"{int(coords_arr[entry, axis])} not in [0, {shape[axis]})"
            )
    return coords_arr, values_arr


def _dedupe_sorted(
    key: np.ndarray, values: np.ndarray, keep_zeros: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Lexsort *key* rows, sum duplicate values, optionally drop zeros.

    The sort is stable, so duplicates are summed in arrival order; entries
    whose merged value is exactly zero (e.g. ``+1.0`` cancelled by
    ``-1.0``) are dropped unless ``keep_zeros`` asks for explicit zeros.
    """
    n = key.shape[0]
    if n == 0:
        return key, values
    if key.shape[1]:
        sort_idx = np.lexsort(key.T[::-1])
        key = key[sort_idx]
        values = values[sort_idx]
    head = np.empty(n, dtype=bool)
    head[0] = True
    if key.shape[1]:
        head[1:] = (key[1:] != key[:-1]).any(axis=1)
    else:
        head[1:] = False
    starts = np.flatnonzero(head)
    if starts.size == n:
        merged = values.copy()
    else:
        # np.add.at applies the additions element-by-element in array
        # order (unbuffered), so duplicates really are summed in arrival
        # order — np.add.reduceat would pairwise-sum groups larger than
        # numpy's unrolling block, silently diverging from the
        # from_coords_reference oracle in the last bits.
        merged = np.zeros(starts.size, dtype=np.float64)
        np.add.at(merged, np.cumsum(head) - 1, values)
    key = key[starts]
    if not keep_zeros:
        nonzero = merged != 0
        if not nonzero.all():
            key = key[nonzero]
            merged = merged[nonzero]
    return key, merged


class FiberTensor:
    """A tensor stored as a fibertree with per-level formats."""

    def __init__(
        self,
        shape: Sequence[int],
        levels: Sequence[Level],
        vals: Sequence[float],
        mode_order: Optional[Sequence[int]] = None,
        name: str = "T",
    ):
        self.shape: Tuple[int, ...] = tuple(shape)
        self.levels: List[Level] = list(levels)
        self.vals: np.ndarray = np.array(vals, dtype=np.float64).reshape(-1)
        self.mode_order: Tuple[int, ...] = tuple(
            mode_order if mode_order is not None else range(len(self.shape))
        )
        self.name = name
        if len(self.levels) != len(self.shape):
            raise ValueError(
                f"tensor of order {len(self.shape)} needs {len(self.shape)} levels, "
                f"got {len(self.levels)}"
            )
        if sorted(self.mode_order) != list(range(len(self.shape))):
            raise ValueError(f"mode_order {self.mode_order} is not a permutation")

    # -- construction ----------------------------------------------------
    @classmethod
    def from_coords(
        cls,
        shape: Sequence[int],
        coords: Sequence[Sequence[int]],
        values: Sequence[float],
        formats: Optional[Sequence[str]] = None,
        mode_order: Optional[Sequence[int]] = None,
        name: str = "T",
        bits_per_word: int = 64,
        keep_zeros: bool = False,
    ) -> "FiberTensor":
        """Build a fibertree from COO-style (coords, values) data.

        Coordinates are validated against *shape* (out-of-range or
        negative entries raise ``ValueError``).  Duplicate coordinates are
        summed in arrival order; entries whose merged value is exactly
        zero are dropped unless ``keep_zeros=True``.  ``formats`` gives
        one format name per *storage level*; the default is
        all-compressed.
        """
        shape = tuple(int(s) for s in shape)
        order = len(shape)
        perm = tuple(
            int(m) for m in (mode_order if mode_order is not None else range(order))
        )
        if sorted(perm) != list(range(order)):
            raise ValueError(f"mode_order {perm} is not a permutation")
        formats = tuple(formats if formats is not None else ["compressed"] * order)
        if len(formats) != order:
            raise ValueError(f"need {order} level formats, got {len(formats)}")

        coords_arr, values_arr = _coerce_coo(shape, coords, values)
        # Permute to storage order, sort lexicographically, merge duplicates.
        key = coords_arr[:, list(perm)] if order else coords_arr
        key, merged = _dedupe_sorted(key, values_arr, keep_zeros)

        # Walk the levels top-down.  ``parent`` maps every surviving entry
        # to its fiber at the current level; compressed/bitvector levels
        # derive their fibers from segment-boundary masks, dense levels
        # expand the fiber space affinely.
        m = key.shape[0]
        parent = np.zeros(m, dtype=np.int64)
        num_fibers = 1
        levels: List[Level] = []
        for d in range(order):
            size = shape[perm[d]]
            fmt = formats[d]
            col = key[:, d]
            if fmt in ("compressed", "bitvector"):
                head = np.empty(m, dtype=bool)
                if m:
                    head[0] = True
                    head[1:] = (parent[1:] != parent[:-1]) | (col[1:] != col[:-1])
                starts = np.flatnonzero(head)
                fiber_of_group = parent[starts]
                crd_of_group = col[starts]
                counts = np.bincount(fiber_of_group, minlength=num_fibers)
                seg = np.concatenate(([0], np.cumsum(counts)))
                if fmt == "compressed":
                    levels.append(CompressedLevel(seg, crd_of_group))
                else:
                    levels.append(
                        BitvectorLevel.from_arrays(
                            fiber_of_group, crd_of_group, num_fibers, size,
                            bits_per_word,
                        )
                    )
                parent = np.cumsum(head) - 1
                num_fibers = starts.size
            elif fmt == "dense":
                levels.append(DenseLevel(size, num_fibers=num_fibers))
                parent = parent * size + col
                num_fibers *= size
            else:
                raise ValueError(f"unknown level format {fmt!r}")

        vals = np.zeros(num_fibers if order else 1, dtype=np.float64)
        vals[parent if order else np.zeros(m, dtype=np.int64)] = merged
        return cls(shape, levels, vals, mode_order=perm, name=name)

    @classmethod
    def from_coords_reference(
        cls,
        shape: Sequence[int],
        coords: Sequence[Sequence[int]],
        values: Sequence[float],
        formats: Optional[Sequence[str]] = None,
        mode_order: Optional[Sequence[int]] = None,
        name: str = "T",
        bits_per_word: int = 64,
        keep_zeros: bool = False,
    ) -> "FiberTensor":
        """Pure-Python construction oracle (the pre-vectorization pipeline).

        Semantically identical to :meth:`from_coords` — the differential
        tests assert structural equality — but built with per-entry dict
        and nested-list passes.  Kept for verification and as the baseline
        measured by ``benchmarks/bench_formats.py``.
        """
        shape = tuple(shape)
        order = len(shape)
        perm = tuple(mode_order if mode_order is not None else range(order))
        formats = tuple(formats if formats is not None else ["compressed"] * order)
        if len(formats) != order:
            raise ValueError(f"need {order} level formats, got {len(formats)}")
        coords_arr, values_arr = _coerce_coo(shape, coords, values)

        # Deduplicate and sort nonzeros by permuted coordinate.
        merged: Dict[Tuple[int, ...], float] = {}
        for crd, val in zip(coords_arr.tolist(), values_arr.tolist()):
            key = tuple(crd[perm[d]] for d in range(order))
            merged[key] = merged.get(key, 0.0) + float(val)
        if not keep_zeros:
            merged = {key: val for key, val in merged.items() if val != 0}
        entries = sorted(merged.items())

        levels: List[Level] = []
        # Each fiber is a list of (permuted_coord_tuple, value) entries.
        fibers: List[List[Tuple[Tuple[int, ...], float]]] = [list(entries)]
        for d in range(order):
            size = shape[perm[d]]
            fmt = formats[d]
            if fmt in ("compressed", "bitvector"):
                coord_lists: List[List[int]] = []
                new_fibers: List[List[Tuple[Tuple[int, ...], float]]] = []
                for fiber in fibers:
                    grouped: List[Tuple[int, List]] = []
                    for entry in fiber:
                        crd = entry[0][d]
                        if grouped and grouped[-1][0] == crd:
                            grouped[-1][1].append(entry)
                        else:
                            grouped.append((crd, [entry]))
                    coord_lists.append([g[0] for g in grouped])
                    new_fibers.extend(g[1] for g in grouped)
                if fmt == "compressed":
                    levels.append(CompressedLevel.from_fibers(coord_lists))
                else:
                    levels.append(
                        BitvectorLevel.from_fibers(coord_lists, size, bits_per_word)
                    )
            elif fmt == "dense":
                levels.append(DenseLevel(size, num_fibers=len(fibers)))
                new_fibers = [[] for _ in range(len(fibers) * size)]
                for fi, fiber in enumerate(fibers):
                    for entry in fiber:
                        new_fibers[fi * size + entry[0][d]].append(entry)
            else:
                raise ValueError(f"unknown level format {fmt!r}")
            fibers = new_fibers

        vals = []
        for fiber in fibers:
            if len(fiber) > 1:  # pragma: no cover - grouping guarantees <= 1
                raise AssertionError("value slot holds more than one entry")
            vals.append(fiber[0][1] if fiber else 0.0)
        return cls(shape, levels, vals, mode_order=perm, name=name)

    @classmethod
    def from_numpy(
        cls,
        array: np.ndarray,
        formats: Optional[Sequence[str]] = None,
        mode_order: Optional[Sequence[int]] = None,
        name: str = "T",
        bits_per_word: int = 64,
    ) -> "FiberTensor":
        """Build a fibertree from a dense numpy array, omitting zeros."""
        array = np.asarray(array, dtype=float)
        coords, values = dense_nonzeros(array)
        return cls.from_coords(
            array.shape, coords, values, formats, mode_order, name,
            bits_per_word,
        )

    @classmethod
    def from_scipy(cls, matrix, formats=None, mode_order=None, name: str = "T",
                   keep_zeros: bool = False):
        """Build from any scipy.sparse matrix.

        ``keep_zeros=True`` preserves explicit-zero stored entries (as
        scipy does), so the fibertree's coordinate structure mirrors the
        source file's — what stream-measurement studies want for real
        matrices.
        """
        coo = matrix.tocoo()
        coords = np.column_stack([coo.row, coo.col]).astype(np.int64)
        return cls.from_coords(
            coo.shape, coords, coo.data, formats, mode_order, name,
            keep_zeros=keep_zeros,
        )

    # -- inspection ------------------------------------------------------
    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.vals))

    @property
    def density(self) -> float:
        total = int(np.prod(self.shape)) if self.shape else 1
        return self.nnz / total if total else 0.0

    def level_format(self, depth: int) -> str:
        return self.levels[depth].format_name

    def memory_footprint(self) -> int:
        """Stored words: level metadata plus the value array."""
        return sum(lv.memory_footprint() for lv in self.levels) + int(self.vals.size)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray]:
        """Expand to ``(coords, values)`` COO arrays in storage order.

        Coordinates are *logical* (``mode_order`` already applied), of
        shape ``(n, order)``; value slots holding explicit zeros are
        included.  Compressed and dense levels expand vectorized; other
        level formats fall back to the generic ``fiber()`` walk.
        """
        refs = np.zeros(1, dtype=np.int64)
        columns: List[np.ndarray] = []
        for level in self.levels:
            if isinstance(level, CompressedLevel):
                counts = level.seg[refs + 1] - level.seg[refs]
                rep = np.repeat(np.arange(refs.size), counts)
                positions = level.seg[refs][rep] + segment_offsets(counts)
                columns = [c[rep] for c in columns]
                columns.append(level.crd[positions])
                refs = positions
            elif isinstance(level, DenseLevel):
                size = level.size
                rep = np.repeat(np.arange(refs.size), size)
                crd = np.tile(np.arange(size, dtype=np.int64), refs.size)
                columns = [c[rep] for c in columns]
                columns.append(crd)
                refs = refs[rep] * size + crd
            else:
                rep_list: List[int] = []
                crd_list: List[int] = []
                ref_list: List[int] = []
                for i, ref in enumerate(refs.tolist()):
                    for crd, child in level.fiber(ref):
                        rep_list.append(i)
                        crd_list.append(crd)
                        ref_list.append(child)
                rep = np.asarray(rep_list, dtype=np.int64)
                columns = [c[rep] for c in columns]
                columns.append(np.asarray(crd_list, dtype=np.int64))
                refs = np.asarray(ref_list, dtype=np.int64)
        if not self.order:
            return np.empty((0, 0), dtype=np.int64), self.vals[:1].copy()
        values = self.vals[refs]
        storage = (
            np.stack(columns, axis=1)
            if columns
            else np.empty((0, 0), dtype=np.int64)
        )
        logical = np.empty_like(storage)
        for depth, axis in enumerate(self.mode_order):
            logical[:, axis] = storage[:, depth]
        return logical, values

    def to_numpy(self) -> np.ndarray:
        """Expand back to a dense numpy array (for correctness checking)."""
        if not self.shape:
            return np.array(float(self.vals[0]) if self.vals.size else 0.0)
        out = np.zeros(self.shape, dtype=float)
        coords, values = self.to_coo()
        if coords.size:
            out[tuple(coords.T)] = values
        return out

    def __repr__(self) -> str:
        fmts = "/".join(lv.format_name for lv in self.levels)
        return (
            f"FiberTensor({self.name}, shape={self.shape}, formats={fmts}, "
            f"nnz={self.nnz})"
        )


def scalar_tensor(value: float, name: str = "a") -> FiberTensor:
    """An order-0 tensor holding a single value (used for alpha/beta scalars)."""
    return FiberTensor((), [], [float(value)], mode_order=(), name=name)

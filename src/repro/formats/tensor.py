"""FiberTensor: a multidimensional tensor as a fibertree (paper section 3.1).

A :class:`FiberTensor` is a list of levels (one per dimension, in storage
order) plus a flat value array.  Composing the per-level formats yields
the classic sparse formats:

* all-compressed matrix               -> DCSR (Figure 1c)
* dense outer + compressed inner      -> CSR
* all-dense                           -> a plain dense array
* all-compressed higher-order tensor  -> CSF

``mode_order`` maps storage levels to logical dimensions, so a transposed
matrix is just the same data with ``mode_order=(1, 0)`` — the format
language of section 5 (``C=({comp., comp.}, {mode1, mode0})``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bitvector import BitvectorLevel
from .compressed import CompressedLevel
from .dense import DenseLevel
from .level import Level

FORMAT_NAMES = ("compressed", "dense", "bitvector")


class FiberTensor:
    """A tensor stored as a fibertree with per-level formats."""

    def __init__(
        self,
        shape: Sequence[int],
        levels: Sequence[Level],
        vals: Sequence[float],
        mode_order: Optional[Sequence[int]] = None,
        name: str = "T",
    ):
        self.shape: Tuple[int, ...] = tuple(shape)
        self.levels: List[Level] = list(levels)
        self.vals: List[float] = list(vals)
        self.mode_order: Tuple[int, ...] = tuple(
            mode_order if mode_order is not None else range(len(self.shape))
        )
        self.name = name
        if len(self.levels) != len(self.shape):
            raise ValueError(
                f"tensor of order {len(self.shape)} needs {len(self.shape)} levels, "
                f"got {len(self.levels)}"
            )
        if sorted(self.mode_order) != list(range(len(self.shape))):
            raise ValueError(f"mode_order {self.mode_order} is not a permutation")

    # -- construction ----------------------------------------------------
    @classmethod
    def from_coords(
        cls,
        shape: Sequence[int],
        coords: Sequence[Sequence[int]],
        values: Sequence[float],
        formats: Optional[Sequence[str]] = None,
        mode_order: Optional[Sequence[int]] = None,
        name: str = "T",
        bits_per_word: int = 64,
    ) -> "FiberTensor":
        """Build a fibertree from COO-style (coords, values) data.

        Duplicate coordinates are summed.  ``formats`` gives one format
        name per *storage level*; the default is all-compressed.
        """
        shape = tuple(shape)
        order = len(shape)
        perm = tuple(mode_order if mode_order is not None else range(order))
        formats = tuple(formats if formats is not None else ["compressed"] * order)
        if len(formats) != order:
            raise ValueError(f"need {order} level formats, got {len(formats)}")

        # Deduplicate and sort nonzeros by permuted coordinate.
        merged: Dict[Tuple[int, ...], float] = {}
        for crd, val in zip(coords, values):
            key = tuple(int(crd[perm[d]]) for d in range(order))
            merged[key] = merged.get(key, 0.0) + float(val)
        entries = sorted(merged.items())

        levels: List[Level] = []
        # Each fiber is a list of (permuted_coord_tuple, value) entries.
        fibers: List[List[Tuple[Tuple[int, ...], float]]] = [list(entries)]
        for d in range(order):
            size = shape[perm[d]]
            fmt = formats[d]
            if fmt in ("compressed", "bitvector"):
                coord_lists: List[List[int]] = []
                new_fibers: List[List[Tuple[Tuple[int, ...], float]]] = []
                for fiber in fibers:
                    grouped: List[Tuple[int, List]] = []
                    for entry in fiber:
                        crd = entry[0][d]
                        if grouped and grouped[-1][0] == crd:
                            grouped[-1][1].append(entry)
                        else:
                            grouped.append((crd, [entry]))
                    coord_lists.append([g[0] for g in grouped])
                    new_fibers.extend(g[1] for g in grouped)
                if fmt == "compressed":
                    levels.append(CompressedLevel.from_fibers(coord_lists))
                else:
                    levels.append(
                        BitvectorLevel.from_fibers(coord_lists, size, bits_per_word)
                    )
            elif fmt == "dense":
                levels.append(DenseLevel(size, num_fibers=len(fibers)))
                new_fibers = [[] for _ in range(len(fibers) * size)]
                for fi, fiber in enumerate(fibers):
                    for entry in fiber:
                        new_fibers[fi * size + entry[0][d]].append(entry)
            else:
                raise ValueError(f"unknown level format {fmt!r}")
            fibers = new_fibers

        vals = []
        for fiber in fibers:
            if len(fiber) > 1:  # pragma: no cover - grouping guarantees <= 1
                raise AssertionError("value slot holds more than one entry")
            vals.append(fiber[0][1] if fiber else 0.0)
        return cls(shape, levels, vals, mode_order=perm, name=name)

    @classmethod
    def from_numpy(
        cls,
        array: np.ndarray,
        formats: Optional[Sequence[str]] = None,
        mode_order: Optional[Sequence[int]] = None,
        name: str = "T",
        bits_per_word: int = 64,
    ) -> "FiberTensor":
        """Build a fibertree from a dense numpy array, omitting zeros."""
        array = np.asarray(array, dtype=float)
        nz = np.argwhere(array != 0)
        values = array[tuple(nz.T)] if len(nz) else np.array([])
        return cls.from_coords(
            array.shape, nz.tolist(), values.tolist(), formats, mode_order, name,
            bits_per_word,
        )

    @classmethod
    def from_scipy(cls, matrix, formats=None, mode_order=None, name: str = "T"):
        """Build from any scipy.sparse matrix."""
        coo = matrix.tocoo()
        coords = list(zip(coo.row.tolist(), coo.col.tolist()))
        return cls.from_coords(
            coo.shape, coords, coo.data.tolist(), formats, mode_order, name
        )

    # -- inspection ------------------------------------------------------
    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return sum(1 for v in self.vals if v != 0)

    @property
    def density(self) -> float:
        total = int(np.prod(self.shape)) if self.shape else 1
        return self.nnz / total if total else 0.0

    def level_format(self, depth: int) -> str:
        return self.levels[depth].format_name

    def memory_footprint(self) -> int:
        """Stored words: level metadata plus the value array."""
        return sum(lv.memory_footprint() for lv in self.levels) + len(self.vals)

    def to_numpy(self) -> np.ndarray:
        """Expand back to a dense numpy array (for correctness checking)."""
        out = np.zeros(self.shape, dtype=float)
        if not self.shape:
            return np.array(self.vals[0] if self.vals else 0.0)

        def walk(depth: int, ref: int, prefix: Tuple[int, ...]) -> None:
            if depth == self.order:
                if self.vals[ref] != 0:
                    logical = [0] * self.order
                    for lvl, crd in enumerate(prefix):
                        logical[self.mode_order[lvl]] = crd
                    out[tuple(logical)] = self.vals[ref]
                return
            for crd, child in self.levels[depth].fiber(ref):
                walk(depth + 1, child, prefix + (crd,))

        walk(0, 0, ())
        return out

    def __repr__(self) -> str:
        fmts = "/".join(lv.format_name for lv in self.levels)
        return (
            f"FiberTensor({self.name}, shape={self.shape}, formats={fmts}, "
            f"nnz={self.nnz})"
        )


def scalar_tensor(value: float, name: str = "a") -> FiberTensor:
    """An order-0 tensor holding a single value (used for alpha/beta scalars)."""
    return FiberTensor((), [], [float(value)], mode_order=(), name=name)

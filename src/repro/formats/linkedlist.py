"""Linked-list level format (paper section 6.5, OuterSPACE case study).

OuterSPACE writes its multiply-phase intermediate ``Y[i,k,j]`` in
``i,k,j`` order while the dataflow produces it in ``k,i,j`` order — a
*discordant* write.  A linked-list level supports appending a fiber entry
under any parent in any arrival order: each parent keeps the head of a
singly linked list of (coordinate, child_ref) nodes.

Reads present the nodes in insertion order (the merge phase's vector
reducer handles deduplication/sorting), matching the paper's description
that the level writer "is not restricted to a specific representation".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .level import Level


class LinkedListLevel(Level):
    """Per-parent singly linked lists of (coordinate, child_ref) nodes."""

    format_name = "linkedlist"

    def __init__(self, num_fibers: int = 0):
        self.heads: List[Optional[int]] = [None] * num_fibers
        self.tails: List[Optional[int]] = [None] * num_fibers
        self.node_crd: List[int] = []
        self.node_next: List[Optional[int]] = []

    def ensure_fiber(self, ref: int) -> None:
        """Grow the level so fiber *ref* exists (discordant writers need this)."""
        while len(self.heads) <= ref:
            self.heads.append(None)
            self.tails.append(None)

    def append(self, ref: int, coordinate: int) -> int:
        """Append *coordinate* under fiber *ref*; returns the child reference."""
        self.ensure_fiber(ref)
        node = len(self.node_crd)
        self.node_crd.append(coordinate)
        self.node_next.append(None)
        if self.tails[ref] is None:
            self.heads[ref] = node
        else:
            self.node_next[self.tails[ref]] = node
        self.tails[ref] = node
        return node

    # -- Level interface -----------------------------------------------------
    def num_fibers(self) -> int:
        return len(self.heads)

    def fiber(self, ref: int) -> List[Tuple[int, int]]:
        pairs = []
        node = self.heads[ref]
        while node is not None:
            pairs.append((self.node_crd[node], node))
            node = self.node_next[node]
        return pairs

    def memory_footprint(self) -> int:
        return 2 * len(self.node_crd) + len(self.heads)

    def __repr__(self) -> str:
        return f"LinkedListLevel(fibers={len(self.heads)}, nodes={len(self.node_crd)})"

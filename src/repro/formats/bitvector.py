"""Bitvector level format (paper section 4.3).

Coordinates are encoded as machine words of ``bits_per_word`` bits with a
1 wherever an explicit coordinate exists.  Iteration is pseudo-dense —
every word in the fiber's span is visited, zero or not — but an n-bit
word is processed in a single cycle, which is the whole point.

Child references follow the paper's popcount protocol: the reference
attached to a word is the cumulative popcount of all preceding words, so
downstream levels index memory by summed bitcounts (the ``D, S0, 3, 2, 0``
reference stream of the section 4.3 example).

Storage is a single flat ``uint64`` word array plus a fiber-boundary
segment array (mirroring :class:`~repro.formats.compressed.CompressedLevel`),
with popcount prefixes precomputed in one vectorized pass; the word
tokens handed to scanners are plain Python ints.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .level import Level


def popcount(word: int) -> int:
    """Number of set bits in *word*."""
    return bin(word).count("1")


def _popcount_array(words: np.ndarray) -> np.ndarray:
    """Vectorized per-word popcount (int64 result)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.int64)
    return np.array([popcount(int(w)) for w in words], dtype=np.int64)


def _check_word_width(bits_per_word: int) -> None:
    """Words live in uint64 storage; wider widths would silently drop
    high bits (numpy shifts >= 64 wrap to zero), narrower-than-1 is
    meaningless.  Each construction path checks before building words."""
    if not 1 <= bits_per_word <= 64:
        raise ValueError(
            f"bits_per_word must be in [1, 64], got {bits_per_word}"
        )


def _num_words(size: int, bits_per_word: int) -> int:
    """Words per fiber spanning ``0..size-1`` (shared by every build path,
    so the vectorized and reference constructors cannot diverge)."""
    return max(1, -(-size // bits_per_word)) if size else 0


def coords_to_words(coords: Sequence[int], size: int, bits_per_word: int) -> List[int]:
    """Pack sorted coordinates of a fiber spanning ``0..size-1`` into words."""
    num_words = _num_words(size, bits_per_word)
    words = [0] * num_words
    for crd in coords:
        if not 0 <= crd < size:
            raise ValueError(f"coordinate {crd} outside dimension of size {size}")
        words[crd // bits_per_word] |= 1 << (crd % bits_per_word)
    return words


def word_coords(word: int, word_index: int, bits_per_word: int) -> List[int]:
    """Expand one word back into its absolute coordinates."""
    base = word_index * bits_per_word
    return [base + bit for bit in range(bits_per_word) if word >> bit & 1]


class BitvectorLevel(Level):
    """A level whose fibers are stored as packed bitvector words."""

    format_name = "bitvector"

    def __init__(self, fibers_words: Sequence[Sequence[int]], size: int, bits_per_word: int):
        _check_word_width(bits_per_word)
        flat: List[int] = []
        word_seg = [0]
        for words in fibers_words:
            flat.extend(int(w) for w in words)
            word_seg.append(len(flat))
        self._init_flat(
            np.asarray(flat, dtype=np.uint64),
            np.asarray(word_seg, dtype=np.int64),
            size,
            bits_per_word,
        )

    def _init_flat(
        self, words: np.ndarray, word_seg: np.ndarray, size: int, bits_per_word: int
    ) -> None:
        self.bits_per_word = bits_per_word
        self.size = size
        self._words: np.ndarray = np.ascontiguousarray(words, dtype=np.uint64)
        self._word_seg: np.ndarray = np.ascontiguousarray(word_seg, dtype=np.int64)
        # Global popcount prefix, so child references are contiguous across
        # fibers exactly like compressed-level positions.
        self._cum_pop: np.ndarray = np.concatenate(
            ([0], np.cumsum(_popcount_array(self._words)))
        ).astype(np.int64)
        self._total = int(self._cum_pop[-1])

    @classmethod
    def from_fibers(
        cls, fibers: Sequence[Sequence[int]], size: int, bits_per_word: int = 64
    ) -> "BitvectorLevel":
        """Build from per-fiber coordinate lists (like CompressedLevel)."""
        return cls(
            [coords_to_words(coords, size, bits_per_word) for coords in fibers],
            size,
            bits_per_word,
        )

    @classmethod
    def from_arrays(
        cls,
        fiber_of_coord: np.ndarray,
        coords: np.ndarray,
        num_fibers: int,
        size: int,
        bits_per_word: int = 64,
    ) -> "BitvectorLevel":
        """Vectorized build from parallel (fiber index, coordinate) arrays.

        Every fiber spans the full ``0..size-1`` range, so all fibers get
        the same word count; coordinates must already be range-validated.
        """
        _check_word_width(bits_per_word)
        num_words = _num_words(size, bits_per_word)
        flat = np.zeros(num_fibers * num_words, dtype=np.uint64)
        if coords.size:
            coords = coords.astype(np.uint64)
            slots = fiber_of_coord * num_words + (
                coords // np.uint64(bits_per_word)
            ).astype(np.int64)
            bits = np.left_shift(np.uint64(1), coords % np.uint64(bits_per_word))
            np.bitwise_or.at(flat, slots, bits)
        word_seg = np.arange(num_fibers + 1, dtype=np.int64) * num_words
        level = cls.__new__(cls)
        level._init_flat(flat, word_seg, size, bits_per_word)
        return level

    # -- bitvector-specific interface ----------------------------------------
    @property
    def fibers_words(self) -> List[List[int]]:
        """Per-fiber word lists (compatibility view over the flat storage)."""
        return [
            self._words[self._word_seg[i]:self._word_seg[i + 1]].tolist()
            for i in range(self.num_fibers())
        ]

    def words(self, ref: int) -> List[Tuple[int, int, int]]:
        """``(word_index, word, child_base_ref)`` for every word in fiber *ref*.

        ``child_base_ref`` is the reference of the word's first set bit;
        downstream consumers add per-bit popcount offsets.
        """
        start, stop = int(self._word_seg[ref]), int(self._word_seg[ref + 1])
        ws = self._words[start:stop].tolist()
        bases = self._cum_pop[start:stop].tolist()
        return list(zip(range(stop - start), ws, bases))

    # -- Level interface -----------------------------------------------------
    def num_fibers(self) -> int:
        return self._word_seg.size - 1

    def fiber(self, ref: int) -> List[Tuple[int, int]]:
        pairs = []
        for idx, word, base in self.words(ref):
            for offset, crd in enumerate(word_coords(word, idx, self.bits_per_word)):
                pairs.append((crd, base + offset))
        return pairs

    def total_coordinates(self) -> int:
        return self._total

    def memory_footprint(self) -> int:
        return int(self._words.size)

    def __repr__(self) -> str:
        return (
            f"BitvectorLevel(fibers={self.num_fibers()}, size={self.size}, "
            f"b={self.bits_per_word})"
        )

"""Bitvector level format (paper section 4.3).

Coordinates are encoded as machine words of ``bits_per_word`` bits with a
1 wherever an explicit coordinate exists.  Iteration is pseudo-dense —
every word in the fiber's span is visited, zero or not — but an n-bit
word is processed in a single cycle, which is the whole point.

Child references follow the paper's popcount protocol: the reference
attached to a word is the cumulative popcount of all preceding words, so
downstream levels index memory by summed bitcounts (the ``D, S0, 3, 2, 0``
reference stream of the section 4.3 example).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .level import Level


def popcount(word: int) -> int:
    """Number of set bits in *word*."""
    return bin(word).count("1")


def coords_to_words(coords: Sequence[int], size: int, bits_per_word: int) -> List[int]:
    """Pack sorted coordinates of a fiber spanning ``0..size-1`` into words."""
    num_words = max(1, -(-size // bits_per_word)) if size else 0
    words = [0] * num_words
    for crd in coords:
        if not 0 <= crd < size:
            raise ValueError(f"coordinate {crd} outside dimension of size {size}")
        words[crd // bits_per_word] |= 1 << (crd % bits_per_word)
    return words


def word_coords(word: int, word_index: int, bits_per_word: int) -> List[int]:
    """Expand one word back into its absolute coordinates."""
    base = word_index * bits_per_word
    return [base + bit for bit in range(bits_per_word) if word >> bit & 1]


class BitvectorLevel(Level):
    """A level whose fibers are stored as packed bitvector words."""

    format_name = "bitvector"

    def __init__(self, fibers_words: Sequence[Sequence[int]], size: int, bits_per_word: int):
        self.bits_per_word = bits_per_word
        self.size = size
        self.fibers_words: List[List[int]] = [list(ws) for ws in fibers_words]
        # Global popcount prefix, so child references are contiguous across
        # fibers exactly like compressed-level positions.
        self._fiber_base: List[int] = []
        running = 0
        for words in self.fibers_words:
            self._fiber_base.append(running)
            running += sum(popcount(w) for w in words)
        self._total = running

    @classmethod
    def from_fibers(
        cls, fibers: Sequence[Sequence[int]], size: int, bits_per_word: int = 64
    ) -> "BitvectorLevel":
        """Build from per-fiber coordinate lists (like CompressedLevel)."""
        return cls(
            [coords_to_words(coords, size, bits_per_word) for coords in fibers],
            size,
            bits_per_word,
        )

    # -- bitvector-specific interface ----------------------------------------
    def words(self, ref: int) -> List[Tuple[int, int, int]]:
        """``(word_index, word, child_base_ref)`` for every word in fiber *ref*.

        ``child_base_ref`` is the reference of the word's first set bit;
        downstream consumers add per-bit popcount offsets.
        """
        out = []
        base = self._fiber_base[ref]
        for idx, word in enumerate(self.fibers_words[ref]):
            out.append((idx, word, base))
            base += popcount(word)
        return out

    # -- Level interface -----------------------------------------------------
    def num_fibers(self) -> int:
        return len(self.fibers_words)

    def fiber(self, ref: int) -> List[Tuple[int, int]]:
        pairs = []
        for idx, word, base in self.words(ref):
            for offset, crd in enumerate(word_coords(word, idx, self.bits_per_word)):
                pairs.append((crd, base + offset))
        return pairs

    def total_coordinates(self) -> int:
        return self._total

    def memory_footprint(self) -> int:
        return sum(len(ws) for ws in self.fibers_words)

    def __repr__(self) -> str:
        return (
            f"BitvectorLevel(fibers={len(self.fibers_words)}, size={self.size}, "
            f"b={self.bits_per_word})"
        )

"""Level format interface (paper section 3.1 and Figure 3).

A fibertree stores one *level* per tensor dimension.  Each level format
implements the same scan/locate interface so that level scanners remain
format agnostic — "the interfaces of the level scanner are format
agnostic and ... remain unchanged as the level format implementation
varies" (Figure 3).

A *reference* identifies one fiber inside a level; scanning a fiber
yields ``(coordinate, child_reference)`` pairs where the child reference
names the fiber at the next level down (or the value position for the
last level).
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional, Tuple


class Level(abc.ABC):
    """Abstract fibertree level: an ordered collection of fibers."""

    #: short name used by the format language ("compressed", "dense", ...)
    format_name: str = "abstract"

    @abc.abstractmethod
    def num_fibers(self) -> int:
        """Number of fibers stored at this level."""

    @abc.abstractmethod
    def fiber(self, ref: int) -> List[Tuple[int, int]]:
        """The ``(coordinate, child_ref)`` pairs of the fiber at *ref*."""

    def scan(self, ref: int) -> Iterator[Tuple[int, int]]:
        """Iterate the fiber at *ref* in coordinate order."""
        return iter(self.fiber(ref))

    def locate(self, ref: int, coordinate: int) -> Optional[int]:
        """Child reference for *coordinate* in fiber *ref*, or None.

        This is the iterate-locate (leader-follower) primitive of
        section 4.2.  The default implementation is a linear probe;
        formats override it with something faster where possible.
        """
        for crd, child in self.fiber(ref):
            if crd == coordinate:
                return child
            if crd > coordinate:
                return None
        return None

    def skip_to(self, ref: int, position: int, coordinate: int) -> int:
        """First position >= *position* whose coordinate is >= *coordinate*.

        Supports the coordinate-skipping (galloping) optimisation of
        section 4.2: intersecters tell trailing scanners which coordinate
        is needed next and the scanner jumps ahead.  Positions index into
        the fiber as returned by :meth:`fiber`.
        """
        pairs = self.fiber(ref)
        lo, hi = position, len(pairs)
        while lo < hi:
            mid = (lo + hi) // 2
            if pairs[mid][0] < coordinate:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def fiber_size(self, ref: int) -> int:
        """Number of stored coordinates in the fiber at *ref*."""
        return len(self.fiber(ref))

    def total_coordinates(self) -> int:
        """Total stored coordinates across all fibers."""
        return sum(self.fiber_size(r) for r in range(self.num_fibers()))

    def memory_footprint(self) -> int:
        """Approximate number of stored words (for the memory model)."""
        return self.total_coordinates()

"""Fibertree tensor formats (paper section 3.1, Figures 1 and 3)."""

from .bitvector import BitvectorLevel, coords_to_words, popcount, word_coords
from .compressed import CompressedLevel
from .dense import DenseLevel
from .level import Level
from .linkedlist import LinkedListLevel
from .tensor import FORMAT_NAMES, FiberTensor, scalar_tensor

__all__ = [
    "BitvectorLevel",
    "CompressedLevel",
    "DenseLevel",
    "FORMAT_NAMES",
    "FiberTensor",
    "Level",
    "LinkedListLevel",
    "coords_to_words",
    "popcount",
    "scalar_tensor",
    "word_coords",
]

"""Uncompressed (dense) level format.

An uncompressed level "stores a single number encoding the fiber size"
(paper section 3.1): every fiber implicitly contains all coordinates
``0..size-1`` and child references are computed as ``ref * size + crd``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .level import Level


class DenseLevel(Level):
    """Uncompressed level: a dimension size, nothing else stored."""

    format_name = "dense"

    def __init__(self, size: int, num_fibers: int = 1):
        if size < 0:
            raise ValueError(f"dimension size must be non-negative, got {size}")
        self.size = size
        self._num_fibers = num_fibers

    # -- Level interface -----------------------------------------------------
    def num_fibers(self) -> int:
        return self._num_fibers

    def fiber(self, ref: int) -> List[Tuple[int, int]]:
        base = ref * self.size
        return [(crd, base + crd) for crd in range(self.size)]

    def locate(self, ref: int, coordinate: int) -> Optional[int]:
        if 0 <= coordinate < self.size:
            return ref * self.size + coordinate
        return None

    def skip_to(self, ref: int, position: int, coordinate: int) -> int:
        return max(position, min(coordinate, self.size))

    # -- batched data plane --------------------------------------------------
    def fiber_arrays(self, refs: np.ndarray):
        """Vectorized :meth:`fiber`: every fiber holds 0..size-1."""
        refs = np.asarray(refs, dtype=np.int64)
        size = self.size
        coords = np.arange(size, dtype=np.int64)
        crds = np.tile(coords, len(refs))
        children = (refs[:, None] * size + coords).ravel()
        lens = np.full(len(refs), size, dtype=np.int64)
        return crds, children, lens

    def locate_arrays(self, ref: int, coordinates: np.ndarray):
        """Vectorized :meth:`locate`: in-range coordinates always hit."""
        coordinates = np.asarray(coordinates, dtype=np.int64)
        hits = (coordinates >= 0) & (coordinates < self.size)
        return ref * self.size + coordinates, hits

    def fiber_size(self, ref: int) -> int:
        return self.size

    def total_coordinates(self) -> int:
        return self._num_fibers * self.size

    def memory_footprint(self) -> int:
        return 1  # just the dimension size

    def __repr__(self) -> str:
        return f"DenseLevel(size={self.size}, num_fibers={self._num_fibers})"

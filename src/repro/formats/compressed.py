"""Compressed level format: segment + coordinate arrays (Figure 1c).

This is the per-level building block of CSR/DCSR/CSF.  A segment array
``seg`` of length ``num_fibers + 1`` delimits each fiber's slice of the
coordinate array ``crd``; the child reference of the coordinate stored at
position ``p`` is ``p`` itself (positions are contiguous), exactly as in
the paper's DCSR example where segment ``[3, 5)`` refers to coordinates
at positions 3 and 4.

Both arrays are stored as contiguous ``int64`` numpy arrays so that
million-nnz operands construct and validate in vectorized time; the
:class:`~repro.formats.level.Level` scan/locate interface still hands
plain Python ints to the scanners.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .level import Level


class CompressedLevel(Level):
    """Segment/coordinate-array level (the ``compressed`` format)."""

    format_name = "compressed"

    def __init__(self, seg: Sequence[int], crd: Sequence[int]):
        self.seg: np.ndarray = np.ascontiguousarray(seg, dtype=np.int64)
        self.crd: np.ndarray = np.ascontiguousarray(crd, dtype=np.int64)
        if self.seg.ndim != 1 or self.crd.ndim != 1:
            raise ValueError("seg and crd must be one-dimensional")
        if self.seg.size == 0 or self.seg[0] != 0:
            raise ValueError("segment array must start with 0")
        if self.seg[-1] != self.crd.size:
            raise ValueError(
                f"segment array must end at len(crd)={self.crd.size}, got {self.seg[-1]}"
            )
        if self.seg.size > 1 and np.any(np.diff(self.seg) < 0):
            raise ValueError("segment array must be non-decreasing")
        #: lazily materialised list view of crd for the per-token
        #: locate/skip_to hot path (bisect over a list is ~7x faster per
        #: call than np.searchsorted on a fresh slice)
        self._crd_list: Optional[List[int]] = None

    def _crd_as_list(self) -> List[int]:
        if self._crd_list is None:
            self._crd_list = self.crd.tolist()
        return self._crd_list

    @classmethod
    def from_fibers(cls, fibers: Sequence[Sequence[int]]) -> "CompressedLevel":
        """Build from an explicit list of per-fiber coordinate lists."""
        seg = [0]
        crd: List[int] = []
        for fiber in fibers:
            crd.extend(fiber)
            seg.append(len(crd))
        return cls(seg, crd)

    # -- Level interface -----------------------------------------------------
    def num_fibers(self) -> int:
        return self.seg.size - 1

    def fiber(self, ref: int) -> List[Tuple[int, int]]:
        start, stop = int(self.seg[ref]), int(self.seg[ref + 1])
        return list(zip(self.crd[start:stop].tolist(), range(start, stop)))

    def locate(self, ref: int, coordinate: int) -> Optional[int]:
        start, stop = int(self.seg[ref]), int(self.seg[ref + 1])
        crd = self._crd_as_list()
        pos = bisect_left(crd, coordinate, start, stop)
        if pos < stop and crd[pos] == coordinate:
            return pos
        return None

    def skip_to(self, ref: int, position: int, coordinate: int) -> int:
        start, stop = int(self.seg[ref]), int(self.seg[ref + 1])
        pos = bisect_left(self._crd_as_list(), coordinate, start + position, stop)
        return pos - start

    # -- batched data plane --------------------------------------------------
    def fiber_arrays(self, refs: np.ndarray):
        """Vectorized :meth:`fiber` over a run of references.

        Returns ``(crds, children, lens)``: the concatenated coordinates
        and child references of every requested fiber, plus per-fiber
        lengths (so callers can place the fiber-separating stop tokens).
        """
        refs = np.asarray(refs, dtype=np.int64)
        starts = self.seg[refs]
        lens = self.seg[refs + 1] - starts
        total = int(lens.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, lens
        # Global position p of local index q within fiber i is
        # starts[i] + q; build it as arange(total) rebased per fiber.
        before = np.concatenate([[0], np.cumsum(lens[:-1])])
        children = np.arange(total, dtype=np.int64) + np.repeat(starts - before, lens)
        return self.crd[children], children, lens

    def locate_arrays(self, ref: int, coordinates: np.ndarray):
        """Vectorized :meth:`locate` of many coordinates in one fiber.

        Returns ``(found, hits)``: candidate child references and a hit
        mask (``found`` entries are only meaningful where ``hits``).
        """
        start, stop = int(self.seg[ref]), int(self.seg[ref + 1])
        coordinates = np.asarray(coordinates, dtype=np.int64)
        width = stop - start
        if width == 0:
            return np.zeros(len(coordinates), dtype=np.int64), np.zeros(
                len(coordinates), dtype=bool
            )
        window = self.crd[start:stop]
        pos = np.searchsorted(window, coordinates)
        hits = pos < width
        hits &= window[np.minimum(pos, width - 1)] == coordinates
        return start + pos, hits

    def fiber_size(self, ref: int) -> int:
        return int(self.seg[ref + 1] - self.seg[ref])

    def total_coordinates(self) -> int:
        return int(self.crd.size)

    def memory_footprint(self) -> int:
        return int(self.seg.size + self.crd.size)

    def __repr__(self) -> str:
        return f"CompressedLevel(seg={self.seg.tolist()}, crd={self.crd.tolist()})"

"""Compressed level format: segment + coordinate arrays (Figure 1c).

This is the per-level building block of CSR/DCSR/CSF.  A segment array
``seg`` of length ``num_fibers + 1`` delimits each fiber's slice of the
coordinate array ``crd``; the child reference of the coordinate stored at
position ``p`` is ``p`` itself (positions are contiguous), exactly as in
the paper's DCSR example where segment ``[3, 5)`` refers to coordinates
at positions 3 and 4.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from .level import Level


class CompressedLevel(Level):
    """Segment/coordinate-array level (the ``compressed`` format)."""

    format_name = "compressed"

    def __init__(self, seg: Sequence[int], crd: Sequence[int]):
        self.seg: List[int] = list(seg)
        self.crd: List[int] = list(crd)
        if not self.seg or self.seg[0] != 0:
            raise ValueError("segment array must start with 0")
        if self.seg[-1] != len(self.crd):
            raise ValueError(
                f"segment array must end at len(crd)={len(self.crd)}, got {self.seg[-1]}"
            )
        for a, b in zip(self.seg, self.seg[1:]):
            if b < a:
                raise ValueError("segment array must be non-decreasing")

    @classmethod
    def from_fibers(cls, fibers: Sequence[Sequence[int]]) -> "CompressedLevel":
        """Build from an explicit list of per-fiber coordinate lists."""
        seg = [0]
        crd: List[int] = []
        for fiber in fibers:
            crd.extend(fiber)
            seg.append(len(crd))
        return cls(seg, crd)

    # -- Level interface -----------------------------------------------------
    def num_fibers(self) -> int:
        return len(self.seg) - 1

    def fiber(self, ref: int) -> List[Tuple[int, int]]:
        start, stop = self.seg[ref], self.seg[ref + 1]
        return [(self.crd[pos], pos) for pos in range(start, stop)]

    def locate(self, ref: int, coordinate: int) -> Optional[int]:
        start, stop = self.seg[ref], self.seg[ref + 1]
        pos = bisect_left(self.crd, coordinate, start, stop)
        if pos < stop and self.crd[pos] == coordinate:
            return pos
        return None

    def skip_to(self, ref: int, position: int, coordinate: int) -> int:
        start, stop = self.seg[ref], self.seg[ref + 1]
        pos = bisect_left(self.crd, coordinate, start + position, stop)
        return pos - start

    def fiber_size(self, ref: int) -> int:
        return self.seg[ref + 1] - self.seg[ref]

    def total_coordinates(self) -> int:
        return len(self.crd)

    def memory_footprint(self) -> int:
        return len(self.seg) + len(self.crd)

    def __repr__(self) -> str:
        return f"CompressedLevel(seg={self.seg}, crd={self.crd})"

"""GraphBuilder: shared channel/wiring bookkeeping for dataflow graphs.

Every hand-wired kernel used to repeat the same boilerplate — a
``chans`` dict, a local ``ch(name, kind)`` factory, and a ``blocks``
list fed by ``blocks.append(...)``.  :class:`GraphBuilder` centralises
that pattern (and is what :mod:`repro.graph.bind` instantiates compiled
graphs into), so every construction site gets duplicate-name checking,
named channel lookup, and backend-selectable execution for free.

Typical use::

    g = GraphBuilder("spmv")
    g.add(RootFeeder(g.ch("root", "ref"), name="root_B"))
    g.add(make_scanner(level, g["root"], g.ch("crd"), g.ch("ref", "ref")))
    report = g.run(backend="event")
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..sim.backends import SimulationReport, run_blocks
from ..streams.channel import Channel


class GraphBuilder:
    """Collects the channels and blocks of one dataflow graph."""

    def __init__(self, name: str = ""):
        self.name = name
        self.blocks: List = []
        self.channels: Dict[str, Channel] = {}

    # -- channels --------------------------------------------------------
    def channel(
        self,
        name: str,
        kind: str = "crd",
        capacity: Optional[int] = None,
        record: bool = False,
    ) -> Channel:
        """Create and register a channel; duplicate names are rejected."""
        if name in self.channels:
            raise ValueError(f"duplicate channel name {name!r}")
        chan = Channel(name, kind=kind, capacity=capacity, record=record)
        self.channels[name] = chan
        return chan

    #: short alias matching the old local ``ch(...)`` helpers
    ch = channel

    def __getitem__(self, name: str) -> Channel:
        return self.channels[name]

    def __contains__(self, name: str) -> bool:
        return name in self.channels

    # -- blocks ----------------------------------------------------------
    def add(self, block):
        """Register one block; returns it so writer handles can be kept."""
        self.blocks.append(block)
        return block

    def add_all(self, blocks: Iterable) -> None:
        """Register several blocks (e.g. the pair from ``make_repeater``)."""
        self.blocks.extend(blocks)

    # -- execution -------------------------------------------------------
    def run(
        self,
        max_cycles: Optional[int] = None,
        backend: Optional[str] = None,
        max_resumptions: Optional[int] = None,
    ) -> SimulationReport:
        """Simulate the collected graph on the chosen backend.

        ``max_resumptions`` is the functional backends' explicit
        token-operation budget (``max_cycles`` is advisory there).
        """
        return run_blocks(self.blocks, max_cycles=max_cycles, backend=backend,
                          max_resumptions=max_resumptions)

    def __repr__(self) -> str:
        return (
            f"GraphBuilder({self.name!r}, blocks={len(self.blocks)}, "
            f"channels={len(self.channels)})"
        )

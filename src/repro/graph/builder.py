"""Declarative graph construction: typed ports, auto-wiring, validation.

Two layers live here:

* :class:`GraphBuilder` — the original imperative surface (``ch``/
  ``add``/``run``), kept as a thin compatibility shim.
* :class:`Graph` — the declarative layer every kernel now uses.  A
  stream is *named once* at its producer (:meth:`Graph.out`) and
  referenced by the same name at its consumer (:meth:`Graph.in_`);
  matching names auto-wire the edge, exactly as the SAM paper draws
  graphs (named streams between typed block ports).  Explicit
  :meth:`Graph.connect` rebinds an input port past the name matching,
  and :meth:`Graph.validate` checks the whole graph *before it runs*:
  duplicate producers, multi-consumer streams without a ``Fanout``,
  unconnected required ports, port/stream kind mismatches against each
  block's :class:`~repro.blocks.base.PortSpec` declarations, and
  capability mismatches for the requested backend.  A validated graph
  can also be nested: :meth:`Graph.as_node` exposes its open streams as
  ports so a PE-array lane or a tiled kernel composes as a single node
  (:meth:`Graph.include`).

Typical use::

    g = Graph("spmv")
    g.add(RootFeeder(g.out("root", "ref"), name="root_B"))
    g.add(make_scanner(level, g.in_("root"),
                       g.out("crd"), g.out("ref", "ref")))
    report = g.run(backend="event")   # validates, then simulates
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..blocks.base import Block
from ..sim.backends import SimulationReport, run_blocks
from ..streams.channel import Channel
from ..streams.stream import STREAM_KINDS


class RunCapture:
    """Recorder for simulation launches made while a capture is active.

    ``runs`` collects one ``(blocks, report)`` pair per launch through
    :meth:`GraphBuilder.run` or :meth:`repro.graph.bind.BoundGraph.run`.
    With ``simulate=False`` the launch is intercepted entirely: the
    block list is recorded and a zero-cycle report returned without
    running, so ``repro lint`` can collect graph structure from kernels
    whose results it does not need.
    """

    def __init__(self, simulate: bool = True):
        self.simulate = simulate
        self.runs: List[Tuple[List[Block], SimulationReport]] = []

    def record(self, blocks: Iterable[Block],
               report: SimulationReport) -> None:
        self.runs.append((list(blocks), report))


#: innermost-last stack of active captures (see :func:`capture_runs`)
_CAPTURE_STACK: List[RunCapture] = []


def active_capture() -> Optional[RunCapture]:
    """The innermost active :class:`RunCapture`, or None."""
    return _CAPTURE_STACK[-1] if _CAPTURE_STACK else None


@contextlib.contextmanager
def capture_runs(simulate: bool = True):
    """Record every graph launched through the builder/bind run paths.

    The static-analysis CLI uses this to get at the wired block lists
    kernels build internally::

        with capture_runs() as capture:
            spmv_locate(matrix, vector, backend="functional")
        for blocks, report in capture.runs:
            ...

    ``simulate=False`` skips the simulations entirely (structure-only
    capture); kernels that consume their own intermediate results need
    the default ``simulate=True``.
    """
    capture = RunCapture(simulate=simulate)
    _CAPTURE_STACK.append(capture)
    try:
        yield capture
    finally:
        _CAPTURE_STACK.pop()


class GraphValidationError(RuntimeError):
    """A graph failed build-time validation.

    ``violations`` carries every individual finding; the message names
    the offending block and port for each.
    """

    def __init__(self, violations):
        if isinstance(violations, str):
            violations = [violations]
        self.violations: List[str] = list(violations)
        super().__init__(
            "graph validation failed:\n  " + "\n  ".join(self.violations)
        )


#: execution planes a backend can drive; every engine falls back to the
#: scalar generator per block, so "scalar" appears everywhere
_BACKEND_PLANES = {
    "cycle": ("scalar",),
    "event": ("scalar",),
    "timed-batch": ("timed", "scalar"),
    "compiled": ("timed", "scalar"),
    "functional": ("batched", "scalar"),
    "functional-seq": ("scalar",),
}


class GraphBuilder:
    """Collects the channels and blocks of one dataflow graph."""

    def __init__(self, name: str = ""):
        self.name = name
        self.blocks: List = []
        self.channels: Dict[str, Channel] = {}

    # -- channels --------------------------------------------------------
    def channel(
        self,
        name: str,
        kind: str = "crd",
        capacity: Optional[int] = None,
        record: bool = False,
    ) -> Channel:
        """Create and register a channel; duplicate names are rejected."""
        if name in self.channels:
            raise ValueError(f"duplicate channel name {name!r}")
        chan = Channel(name, kind=kind, capacity=capacity, record=record)
        self.channels[name] = chan
        return chan

    #: short alias matching the old local ``ch(...)`` helpers
    ch = channel

    def __getitem__(self, name: str) -> Channel:
        return self.channels[name]

    def __contains__(self, name: str) -> bool:
        return name in self.channels

    # -- blocks ----------------------------------------------------------
    def add(self, block):
        """Register one block; returns it so writer handles can be kept."""
        self.blocks.append(block)
        return block

    def add_all(self, blocks: Iterable) -> None:
        """Register several blocks (e.g. the pair from ``make_repeater``)."""
        self.blocks.extend(blocks)

    # -- execution -------------------------------------------------------
    def run(
        self,
        max_cycles: Optional[int] = None,
        backend: Optional[str] = None,
        max_resumptions: Optional[int] = None,
    ) -> SimulationReport:
        """Simulate the collected graph on the chosen backend.

        ``max_resumptions`` is the functional backends' explicit
        token-operation budget (``max_cycles`` is advisory there).
        """
        capture = active_capture()
        if capture is not None and not capture.simulate:
            report = SimulationReport(0, list(self.blocks))
            capture.record(self.blocks, report)
            return report
        report = run_blocks(self.blocks, max_cycles=max_cycles,
                            backend=backend,
                            max_resumptions=max_resumptions)
        if capture is not None:
            capture.record(self.blocks, report)
        return report

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, blocks={len(self.blocks)}, "
            f"channels={len(self.channels)})"
        )


class GraphNode:
    """A validated subgraph exposed as a single composite node.

    ``inputs`` maps each open (unfed) stream name to its channel,
    ``outputs`` each unconsumed one; handing those channels to blocks of
    the enclosing :class:`Graph` — a ``Parallelizer`` fanning into each
    lane's input, a ``Serializer`` draining each lane's output — wires
    the composition without touching the subgraph's internals.
    """

    def __init__(self, graph: "Graph", inputs: Dict[str, Channel],
                 outputs: Dict[str, Channel]):
        self.graph = graph
        self.name = graph.name
        self.inputs = inputs
        self.outputs = outputs

    def input(self, name: str) -> Channel:
        return self.inputs[name]

    def output(self, name: str) -> Channel:
        return self.outputs[name]

    def __repr__(self) -> str:
        return (
            f"GraphNode({self.name!r}, in={sorted(self.inputs)}, "
            f"out={sorted(self.outputs)})"
        )


class Graph(GraphBuilder):
    """Declarative dataflow graph: named streams, typed ports, validation.

    A stream is declared exactly once at its producer with :meth:`out`
    and referenced by name at each consumer with :meth:`in_`; identical
    names auto-wire the edge.  :meth:`validate` (run automatically by
    :meth:`run`) rejects malformed graphs before simulation — see
    :class:`GraphValidationError` — using each block's
    :class:`~repro.blocks.base.PortSpec` declarations and capability
    flags.  :meth:`as_node`/:meth:`include` nest validated subgraphs as
    composite nodes.
    """

    def __init__(self, name: str = ""):
        super().__init__(name)
        #: stream names already claimed by a producer via :meth:`out`
        self._produced: Set[str] = set()
        #: channel ids exempt from connectivity checks (see :meth:`unused`)
        self._unchecked: Set[int] = set()
        #: subgraph name -> member blocks, recorded by :meth:`include`
        #: (consumed by the DOT renderer for cluster grouping)
        self.groups: Dict[str, List[Block]] = {}

    # -- declarative wiring ---------------------------------------------
    def out(
        self,
        name: str,
        kind: str = "crd",
        capacity: Optional[int] = None,
        record: bool = False,
    ) -> Channel:
        """Declare stream *name* at its producer; creates the channel.

        A second ``out()`` for the same name is rejected immediately —
        one stream has one producer (merge explicitly through a
        ``Serializer`` instead).  Adopts a forward-referenced channel
        created earlier by :meth:`in_` when the declarations agree;
        conflicting re-declarations (a different kind or capacity than
        the forward reference committed to) raise instead of silently
        mutating the channel consumers already hold.
        """
        if kind not in STREAM_KINDS:
            raise ValueError(f"unknown stream kind {kind!r} for {name!r}")
        if name in self._produced:
            raise GraphValidationError(
                f"stream {name!r} declared by two producers; merge them "
                f"through a Serializer or rename one"
            )
        self._produced.add(name)
        if name in self.channels:
            chan = self.channels[name]
            if chan.kind != kind:
                raise GraphValidationError(
                    f"stream {name!r} was forward-referenced as kind "
                    f"{chan.kind!r} but its producer declares {kind!r}; "
                    f"make the declarations agree"
                )
            if capacity is not None:
                if chan.capacity is not None and chan.capacity != capacity:
                    raise GraphValidationError(
                        f"stream {name!r} already has capacity "
                        f"{chan.capacity} but its producer re-declares "
                        f"capacity {capacity}; conflicting capacities"
                    )
                chan.capacity = capacity
            if record:
                chan.record = record
            return chan
        return self.channel(name, kind, capacity=capacity, record=record)

    def in_(self, name: str, kind: Optional[str] = None) -> Channel:
        """Reference stream *name* at a consumer.

        Normally the producer has declared it already (graphs are built
        source-to-sink); passing ``kind`` allows a forward reference,
        creating the channel for a producer declared later.
        """
        if name in self.channels:
            return self.channels[name]
        if kind is None:
            raise GraphValidationError(
                f"stream {name!r} referenced before its producer declared "
                f"it; call out({name!r}, ...) first or pass kind= to "
                f"forward-reference"
            )
        return self.channel(name, kind)

    def connect(self, src, dst: Tuple[Block, str]) -> Channel:
        """Explicitly rebind a consumer port past the name auto-wiring.

        ``src`` is a stream name, a channel, or an ``(block, out_port)``
        pair; ``dst`` is the ``(block, in_port)`` to repoint.
        """
        if isinstance(src, str):
            src = self.channels[src]
        elif isinstance(src, tuple):
            block, port = src
            src = block.outputs[port]
        block, port = dst
        return block.rebind_input(port, src)

    def unused(self, *streams) -> None:
        """Exempt streams from connectivity checks.

        Marks intentionally dangling outputs (a locator's unused
        coordinate stream) and side-band-fed inputs (merge-side skip
        channels, which the merger holds without registering) so
        :meth:`validate` does not flag them.
        """
        for stream in streams:
            chan = self.channels[stream] if isinstance(stream, str) else stream
            self._unchecked.add(id(chan))

    # -- validation ------------------------------------------------------
    def _scan(self, allow_open: bool = False):
        """Walk the wired blocks; returns (violations, open_in, open_out)."""
        producers: Dict[int, List[Tuple[Block, str]]] = {}
        consumers: Dict[int, List[Tuple[Block, str]]] = {}
        chan_by_id: Dict[int, Channel] = {}
        for block in self.blocks:
            for port, chan in block.outputs.items():
                producers.setdefault(id(chan), []).append((block, port))
                chan_by_id[id(chan)] = chan
            for port, chan in block.inputs.items():
                consumers.setdefault(id(chan), []).append((block, port))
                chan_by_id[id(chan)] = chan

        violations: List[str] = []
        open_in: Dict[str, Channel] = {}
        open_out: Dict[str, Channel] = {}

        for cid, plist in producers.items():
            chan = chan_by_id[cid]
            if len(plist) > 1:
                names = ", ".join(f"{b.name}.{p}" for b, p in plist)
                violations.append(
                    f"stream {chan.name!r} has multiple producers ({names}); "
                    f"merge them through a Serializer"
                )
            if cid not in consumers and cid not in self._unchecked:
                block, port = plist[0]
                if allow_open:
                    open_out[chan.name or port] = chan
                else:
                    violations.append(
                        f"{block.name}.{port} writes stream {chan.name!r} "
                        f"which has no consumer; mark it unused() if "
                        f"intentional"
                    )
        for cid, clist in consumers.items():
            chan = chan_by_id[cid]
            if len(clist) > 1:
                names = ", ".join(f"{b.name}.{p}" for b, p in clist)
                violations.append(
                    f"stream {chan.name!r} has multiple consumers ({names}); "
                    f"split it through an explicit Fanout"
                )
            if cid not in producers and cid not in self._unchecked:
                block, port = clist[0]
                if allow_open:
                    open_in[chan.name or port] = chan
                else:
                    violations.append(
                        f"{block.name}.{port} reads stream {chan.name!r} "
                        f"which has no producer"
                    )

        for block in self.blocks:
            specs = type(block).port_specs
            for direction, registry in (("in", block.inputs),
                                        ("out", block.outputs)):
                for port, chan in registry.items():
                    spec = type(block).spec_for(direction, port)
                    if (spec is not None and spec.kind is not None
                            and chan.kind != spec.kind):
                        violations.append(
                            f"{block.name}.{port} expects a {spec.kind!r} "
                            f"stream but {chan.name!r} carries {chan.kind!r}"
                        )
            for spec in specs:
                if spec.variadic or spec.sideband or not spec.required:
                    continue
                registry = block.inputs if spec.direction == "in" else block.outputs
                if spec.name not in registry:
                    violations.append(
                        f"{block.name}: required {spec.direction} port "
                        f"{spec.name!r} is unconnected"
                    )
        return violations, open_in, open_out

    def validate(self, backend: Optional[str] = None,
                 analyze: bool = False) -> "Graph":
        """Check the wired graph; raises :class:`GraphValidationError`.

        Rejected at bind time, each naming the offending block and port:
        duplicate producers, multi-consumer streams without a Fanout,
        unconnected required ports (dangling outputs / unfed inputs),
        stream-kind mismatches against PortSpec declarations, and — when
        *backend* is given — blocks with no execution plane the backend
        can drive (capability mismatch).

        ``analyze=True`` additionally runs the static-analysis passes
        (:mod:`repro.analysis`: protocol inference and deadlock/capacity
        checking) and raises on any error-severity finding, so a graph
        can be proved protocol-consistent and deadlock-free before its
        first simulated cycle.
        """
        violations, _, _ = self._scan(allow_open=False)
        if backend is not None:
            from ..sim.backends import resolve_backend

            planes = set(_BACKEND_PLANES.get(resolve_backend(backend),
                                             ("scalar",)))
            for block in self.blocks:
                caps = type(block).capabilities()
                if not caps & planes:
                    violations.append(
                        f"{block.name} ({type(block).__name__}) supports "
                        f"{sorted(caps)} but backend {backend!r} drives "
                        f"{sorted(planes)}; no common execution plane"
                    )
        if violations:
            raise GraphValidationError(violations)
        if analyze:
            from ..analysis import lint_blocks

            findings = lint_blocks(self.blocks).errors
            if findings:
                raise GraphValidationError(
                    [finding.render() for finding in findings]
                )
        return self

    # -- nested composition ---------------------------------------------
    def as_node(self) -> GraphNode:
        """Expose this validated subgraph as a single composite node.

        Internal wiring is checked (kinds, duplicate producers,
        multi-consumer streams); open streams become the node's port
        interface instead of violations.
        """
        violations, open_in, open_out = self._scan(allow_open=True)
        if violations:
            raise GraphValidationError(violations)
        return GraphNode(self, open_in, open_out)

    def include(self, node: GraphNode, prefix: Optional[str] = None) -> GraphNode:
        """Merge a composite node's blocks into this graph.

        Channels are registered under ``{prefix}.{name}``; the node's
        open ports stay addressable through ``node.input()``/
        ``node.output()`` for wiring to enclosing blocks.
        """
        prefix = prefix if prefix is not None else node.name
        for cname, chan in node.graph.channels.items():
            key = f"{prefix}.{cname}" if prefix else cname
            if key in self.channels:
                raise GraphValidationError(
                    f"including {node.name!r}: channel name {key!r} "
                    f"collides with an existing stream"
                )
            self.channels[key] = chan
        self.blocks.extend(node.graph.blocks)
        self._unchecked |= node.graph._unchecked
        self.groups[prefix or node.name] = list(node.graph.blocks)
        return node

    # -- execution -------------------------------------------------------
    def run(
        self,
        max_cycles: Optional[int] = None,
        backend: Optional[str] = None,
        max_resumptions: Optional[int] = None,
        validate: bool = True,
    ) -> SimulationReport:
        """Validate (by default), then simulate on the chosen backend."""
        if validate:
            self.validate(backend=backend)
        return super().run(max_cycles=max_cycles, backend=backend,
                           max_resumptions=max_resumptions)

"""DOT export of SAM graphs.

The SAM artifact stores compiled graphs in the Graphviz DOT format; we do
the same so graphs can be visually compared against the paper's figures
(stippled arrows for reference streams, solid for coordinate streams,
double-struck — rendered bold — for value streams, as in Figure 4).
"""

from __future__ import annotations

from .ir import SamGraph

_EDGE_STYLE = {
    "ref": 'style=dashed, color="gray40"',
    "crd": "color=black",
    "vals": 'color="blue", penwidth=2',
    "bv": 'color="purple"',
    "repsig": 'style=dotted, color="orange"',
}

_NODE_SHAPE = {
    "level_scanner": "box",
    "level_writer": "box",
    "vals_writer": "box",
    "array": "cylinder",
    "intersect": "diamond",
    "union": "diamond",
    "repeat": "parallelogram",
    "alu": "circle",
    "reduce": "house",
    "crd_drop": "trapezium",
    "locate": "component",
    "root": "point",
    "sink": "point",
}


def to_dot(graph: SamGraph) -> str:
    """Render *graph* as a DOT digraph string.

    When the graph carries a fused-segment annotation (see
    :meth:`SamGraph.annotate_fusion`), each super-block's members are
    grouped in a ``cluster_fused_*`` subgraph so the compiled backend's
    fusion decisions are visually auditable.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;", "  node [fontsize=10];"]
    fused = {}
    if graph.fused_segments:
        for si, seg in enumerate(graph.fused_segments):
            for name in seg:
                fused[name] = si

    def node_line(node):
        shape = _NODE_SHAPE.get(node.kind, "box")
        return f'  "{node.name}" [label="{node.label()}", shape={shape}];'

    kinds = graph.fused_segment_kinds or ()
    for si, seg in enumerate(graph.fused_segments or ()):
        kind = kinds[si] if si < len(kinds) else ""
        label = f"fused segment {si}" + (f" [{kind}]" if kind else "")
        lines.append(f"  subgraph cluster_fused_{si} {{")
        lines.append(f'    label="{label}"; style=dashed; color="red3";')
        for name in seg:
            lines.append("  " + node_line(graph.nodes[name]))
        lines.append("  }")
    for node in graph.nodes.values():
        if node.name in fused:
            continue
        lines.append(node_line(node))
    for edge in graph.edges:
        style = _EDGE_STYLE.get(edge.kind, "color=black")
        lines.append(
            f'  "{edge.src}" -> "{edge.dst}" '
            f'[taillabel="{edge.src_port}", headlabel="{edge.dst_port}", '
            f"fontsize=8, {style}];"
        )
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: SamGraph, path: str) -> str:
    """Write the DOT rendering to *path*; returns the path."""
    text = to_dot(graph)
    with open(path, "w") as handle:
        handle.write(text)
    return path


def blocks_to_dot(graph) -> str:
    """Render a wired block graph (:class:`repro.graph.builder.Graph`).

    Works on the instantiated-block plane rather than the IR plane:
    edges are recovered from channel identity across each block's
    registered ports and labelled with the producer/consumer port names;
    subgraphs recorded by :meth:`Graph.include` become clusters.
    """
    producers = {}
    consumers = {}
    chans = {}
    for block in graph.blocks:
        for port, chan in block.outputs.items():
            producers.setdefault(id(chan), []).append((block.name, port))
            chans[id(chan)] = chan
        for port, chan in block.inputs.items():
            consumers.setdefault(id(chan), []).append((block.name, port))
            chans[id(chan)] = chan

    grouped = {}
    for gname, members in getattr(graph, "groups", {}).items():
        for block in members:
            grouped[block.name] = gname

    def node_line(block, indent="  "):
        shape = _NODE_SHAPE.get(block.primitive, "box")
        return (
            f'{indent}"{block.name}" '
            f'[label="{block.name}\\n{block.primitive}", shape={shape}];'
        )

    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;",
             "  node [fontsize=10];"]
    for gi, (gname, members) in enumerate(
            sorted(getattr(graph, "groups", {}).items())):
        lines.append(f"  subgraph cluster_sub_{gi} {{")
        lines.append(f'    label="{gname}"; style=dashed; color="gray50";')
        for block in members:
            lines.append(node_line(block, indent="    "))
        lines.append("  }")
    for block in graph.blocks:
        if block.name not in grouped:
            lines.append(node_line(block))
    for cid, chan in chans.items():
        style = _EDGE_STYLE.get(chan.kind, "color=black")
        for src, sport in producers.get(cid, ()):
            for dst, dport in consumers.get(cid, ()):
                lines.append(
                    f'  "{src}" -> "{dst}" '
                    f'[label="{chan.name}", taillabel="{sport}", '
                    f'headlabel="{dport}", fontsize=8, {style}];'
                )
    lines.append("}")
    return "\n".join(lines)

"""DOT export of SAM graphs.

The SAM artifact stores compiled graphs in the Graphviz DOT format; we do
the same so graphs can be visually compared against the paper's figures
(stippled arrows for reference streams, solid for coordinate streams,
double-struck — rendered bold — for value streams, as in Figure 4).
"""

from __future__ import annotations

from .ir import SamGraph

_EDGE_STYLE = {
    "ref": 'style=dashed, color="gray40"',
    "crd": "color=black",
    "vals": 'color="blue", penwidth=2',
    "bv": 'color="purple"',
    "repsig": 'style=dotted, color="orange"',
}

_NODE_SHAPE = {
    "level_scanner": "box",
    "level_writer": "box",
    "vals_writer": "box",
    "array": "cylinder",
    "intersect": "diamond",
    "union": "diamond",
    "repeat": "parallelogram",
    "alu": "circle",
    "reduce": "house",
    "crd_drop": "trapezium",
    "locate": "component",
    "root": "point",
    "sink": "point",
}


def to_dot(graph: SamGraph) -> str:
    """Render *graph* as a DOT digraph string.

    When the graph carries a fused-segment annotation (see
    :meth:`SamGraph.annotate_fusion`), each super-block's members are
    grouped in a ``cluster_fused_*`` subgraph so the compiled backend's
    fusion decisions are visually auditable.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;", "  node [fontsize=10];"]
    fused = {}
    if graph.fused_segments:
        for si, seg in enumerate(graph.fused_segments):
            for name in seg:
                fused[name] = si

    def node_line(node):
        shape = _NODE_SHAPE.get(node.kind, "box")
        return f'  "{node.name}" [label="{node.label()}", shape={shape}];'

    kinds = graph.fused_segment_kinds or ()
    for si, seg in enumerate(graph.fused_segments or ()):
        kind = kinds[si] if si < len(kinds) else ""
        label = f"fused segment {si}" + (f" [{kind}]" if kind else "")
        lines.append(f"  subgraph cluster_fused_{si} {{")
        lines.append(f'    label="{label}"; style=dashed; color="red3";')
        for name in seg:
            lines.append("  " + node_line(graph.nodes[name]))
        lines.append("  }")
    for node in graph.nodes.values():
        if node.name in fused:
            continue
        lines.append(node_line(node))
    for edge in graph.edges:
        style = _EDGE_STYLE.get(edge.kind, "color=black")
        lines.append(
            f'  "{edge.src}" -> "{edge.dst}" '
            f'[taillabel="{edge.src_port}", headlabel="{edge.dst_port}", '
            f"fontsize=8, {style}];"
        )
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph: SamGraph, path: str) -> str:
    """Write the DOT rendering to *path*; returns the path."""
    text = to_dot(graph)
    with open(path, "w") as handle:
        handle.write(text)
    return path

"""SAM dataflow graph IR, DOT export, builder, and simulator binding."""

from .bind import BoundGraph, bind, node_ports
from .builder import GraphBuilder
from .dot import to_dot, write_dot
from .ir import Edge, GraphError, Node, SamGraph, fanout_groups

__all__ = [
    "BoundGraph",
    "GraphBuilder",
    "Edge",
    "GraphError",
    "Node",
    "SamGraph",
    "bind",
    "fanout_groups",
    "node_ports",
    "to_dot",
    "write_dot",
]

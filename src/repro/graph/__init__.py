"""SAM dataflow graph IR, DOT export, and simulator binding."""

from .bind import BoundGraph, bind, node_ports
from .dot import to_dot, write_dot
from .ir import Edge, GraphError, Node, SamGraph, fanout_groups

__all__ = [
    "BoundGraph",
    "Edge",
    "GraphError",
    "Node",
    "SamGraph",
    "bind",
    "fanout_groups",
    "node_ports",
    "to_dot",
    "write_dot",
]

"""SAM dataflow graph IR, DOT export, builder, and simulator binding."""

from .bind import BoundGraph, bind, node_ports
from .builder import (
    Graph,
    GraphBuilder,
    GraphNode,
    GraphValidationError,
    RunCapture,
    active_capture,
    capture_runs,
)
from .dot import blocks_to_dot, to_dot, write_dot
from .ir import Edge, GraphError, Node, SamGraph, fanout_groups

__all__ = [
    "BoundGraph",
    "Graph",
    "GraphBuilder",
    "GraphNode",
    "GraphValidationError",
    "RunCapture",
    "active_capture",
    "capture_runs",
    "Edge",
    "GraphError",
    "Node",
    "SamGraph",
    "bind",
    "blocks_to_dot",
    "fanout_groups",
    "node_ports",
    "to_dot",
    "write_dot",
]

"""SAM dataflow graph intermediate representation (paper sections 3 and 5).

A :class:`SamGraph` is the compiler's output and the simulator's input: a
directed graph of typed primitive nodes whose ports are connected by
typed stream edges.  The IR is deliberately close to the paper's figures
— one node per drawn block — so :mod:`repro.graph.dot` renders graphs
that look like Figure 4, and :meth:`SamGraph.primitive_counts` produces
the right-hand side of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: node kinds that correspond to countable SAM primitives, mapped to the
#: Table 1 column they are tallied under.
PRIMITIVE_COLUMNS = {
    "level_scanner": "level_scanner",
    "repeat": "repeat",
    "intersect": "intersect",
    "union": "union",
    "alu": "alu",
    "reduce": "reduce",
    "crd_drop": "crd_drop",
    "level_writer": "level_writer",
    "vals_writer": "level_writer",
    "array": "array",
    "locate": "locate",
    "bv_convert": "bv_convert",
}

#: non-primitive plumbing kinds (wires, sources, sinks)
PLUMBING_KINDS = ("root", "source", "sink", "broadcast")


class GraphError(ValueError):
    """Raised for malformed SAM graphs."""


@dataclass
class Node:
    """One dataflow block: a kind, free-form parameters, and a unique name."""

    name: str
    kind: str
    params: Dict = field(default_factory=dict)

    def label(self) -> str:
        """Human-readable label used by the DOT exporter."""
        bits = [self.kind]
        for key in ("tensor", "var", "op", "n", "mode", "format"):
            if key in self.params:
                bits.append(f"{key}={self.params[key]}")
        return f"{self.name}\\n" + " ".join(bits)


@dataclass(frozen=True)
class Edge:
    """A stream from (src node, src port) to (dst node, dst port)."""

    src: str
    src_port: str
    dst: str
    dst_port: str
    kind: str = "crd"  # crd | ref | vals | bv | repsig


class SamGraph:
    """A SAM dataflow graph: nodes, edges, and the result specification."""

    def __init__(self, name: str = "sam"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.edges: List[Edge] = []
        self._counter: Dict[str, int] = {}
        #: fused-segment annotation for the compiled backend: lists of
        #: node names, one list per super-block, set by
        #: :meth:`annotate_fusion` and rendered as DOT clusters.  ``None``
        #: until a fusion partition has been attached.
        self.fused_segments: Optional[List[List[str]]] = None
        #: per-segment kind labels ("value-chain", "scan-locate",
        #: "merge-head", "repeater", "writer-tail"), parallel to
        #: :attr:`fused_segments`.
        self.fused_segment_kinds: Optional[List[str]] = None

    def annotate_fusion(
        self, segments: List[List[str]], kinds: Optional[List[str]] = None
    ) -> None:
        """Attach a fused-segment partition (lists of member node names).

        Names that are not graph nodes (e.g. binder-inserted fanouts) are
        dropped; empty segments are discarded.  *kinds*, when given, is a
        parallel list of segment-kind labels (see
        :func:`repro.graph.bind.partition_segments`) rendered in the DOT
        cluster labels.
        """
        kept = []
        kept_kinds = []
        for i, seg in enumerate(segments):
            names = [n for n in seg if n in self.nodes]
            if names:
                kept.append(names)
                kept_kinds.append(kinds[i] if kinds else "")
        self.fused_segments = kept
        self.fused_segment_kinds = kept_kinds

    # -- construction ------------------------------------------------------
    def add(self, kind: str, name: Optional[str] = None, **params) -> Node:
        """Add a node; names are auto-generated per kind when omitted."""
        if name is None:
            index = self._counter.get(kind, 0)
            self._counter[kind] = index + 1
            name = f"{kind}{index}"
        if name in self.nodes:
            raise GraphError(f"duplicate node name {name!r}")
        node = Node(name, kind, params)
        self.nodes[name] = node
        return node

    def connect(
        self,
        src: "Node | str",
        src_port: str,
        dst: "Node | str",
        dst_port: str,
        kind: str = "crd",
    ) -> Edge:
        src_name = src.name if isinstance(src, Node) else src
        dst_name = dst.name if isinstance(dst, Node) else dst
        for node_name in (src_name, dst_name):
            if node_name not in self.nodes:
                raise GraphError(f"unknown node {node_name!r}")
        for edge in self.edges:
            if edge.dst == dst_name and edge.dst_port == dst_port:
                raise GraphError(
                    f"input port {dst_name}.{dst_port} already driven by "
                    f"{edge.src}.{edge.src_port}"
                )
        edge = Edge(src_name, src_port, dst_name, dst_port, kind)
        self.edges.append(edge)
        return edge

    # -- queries -------------------------------------------------------------
    def in_edges(self, node: "Node | str") -> List[Edge]:
        name = node.name if isinstance(node, Node) else node
        return [e for e in self.edges if e.dst == name]

    def out_edges(self, node: "Node | str") -> List[Edge]:
        name = node.name if isinstance(node, Node) else node
        return [e for e in self.edges if e.src == name]

    def nodes_of_kind(self, kind: str) -> List[Node]:
        return [n for n in self.nodes.values() if n.kind == kind]

    def primitive_counts(self) -> Dict[str, int]:
        """Tally nodes per Table 1 column (plumbing kinds excluded)."""
        counts: Dict[str, int] = {}
        for node in self.nodes.values():
            column = PRIMITIVE_COLUMNS.get(node.kind)
            if column is not None:
                counts[column] = counts.get(column, 0) + 1
        return counts

    def uses_primitive(self, column: str) -> bool:
        return self.primitive_counts().get(column, 0) > 0

    # -- validation ------------------------------------------------------
    def validate(self) -> "SamGraph":
        """Structural checks: known endpoints, no dangling required inputs."""
        seen: set = set()
        for edge in self.edges:
            key = (edge.dst, edge.dst_port)
            if key in seen:  # pragma: no cover - connect() prevents this
                raise GraphError(f"port {key} multiply driven")
            seen.add(key)
        for node in self.nodes.values():
            if node.kind in PLUMBING_KINDS:
                continue
            if node.kind != "root" and not self.in_edges(node):
                raise GraphError(f"node {node.name!r} ({node.kind}) has no inputs")
        return self

    def __repr__(self) -> str:
        return (
            f"SamGraph({self.name!r}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)})"
        )


def fanout_groups(graph: SamGraph) -> Dict[Tuple[str, str], List[Edge]]:
    """Edges grouped by source (node, port) — multi-element groups fan out."""
    groups: Dict[Tuple[str, str], List[Edge]] = {}
    for edge in graph.edges:
        groups.setdefault((edge.src, edge.src_port), []).append(edge)
    return groups

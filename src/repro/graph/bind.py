"""Binding: instantiate a SamGraph as simulator blocks and channels.

This is the "automatic binding from SAM to a streaming dataflow
simulator" of the paper's abstract: every IR node becomes a block, every
edge becomes a channel, and source ports feeding several consumers get a
fanout block (a wire split, not a SAM primitive).

The binder needs the actual tensors because scanners, arrays and locators
close over level/value storage ("memories are pre-initialised").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    CompressedLevelWriter,
    CoordDropper,
    Fanout,
    Intersect,
    Locator,
    MatrixReducer,
    MergeSide,
    RootFeeder,
    ScalarALU,
    ScalarReducer,
    Sink,
    StreamFeeder,
    UncompressedLevelWriter,
    Union,
    ValsWriter,
    ValueDropper,
    VectorReducer,
    make_repeater,
    make_scanner,
)
from ..formats.tensor import FiberTensor, scalar_tensor
from ..sim.backends import SimulationReport, run_blocks
from ..streams.channel import Channel
from .builder import Graph
from .ir import GraphError, Node, SamGraph, fanout_groups


def node_ports(node: Node) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
    """(inputs, outputs) as (port, stream-kind) pairs for *node*'s kind."""
    kind = node.kind
    if kind == "root":
        return [], [("ref", "ref")]
    if kind == "source":
        return [], [("out", node.params.get("stream_kind", "crd"))]
    if kind == "sink":
        return [("in", "crd")], []
    if kind == "level_scanner":
        ins = [("ref", "ref")]
        if node.params.get("skip"):
            ins.append(("skip", "crd"))
        return ins, [("crd", "crd"), ("ref", "ref")]
    if kind == "repeat":
        return [("crd", "crd"), ("ref", "ref")], [("ref", "ref")]
    if kind in ("intersect", "union"):
        sides: List[int] = node.params["sides"]
        ins = []
        outs = [("crd", "crd")]
        for i, arity in enumerate(sides):
            ins.append((f"crd{i}", "crd"))
            for j in range(arity):
                ins.append((f"ref{i}_{j}", "ref"))
                outs.append((f"ref{i}_{j}", "ref"))
            if node.params.get("skipping"):
                outs.append((f"skip{i}", "crd"))
        return ins, outs
    if kind == "alu":
        if "const" in node.params:
            return [("a", "vals")], [("val", "vals")]
        return [("a", "vals"), ("b", "vals")], [("val", "vals")]
    if kind == "reduce":
        n = node.params.get("n", 0)
        if n == 0:
            return [("val", "vals")], [("val", "vals")]
        if n == 1:
            return (
                [("crd", "crd"), ("val", "vals")],
                [("crd", "crd"), ("val", "vals")],
            )
        if n == 2:
            return (
                [("crd_outer", "crd"), ("crd_inner", "crd"), ("val", "vals")],
                [("crd_outer", "crd"), ("crd_inner", "crd"), ("val", "vals")],
            )
        raise GraphError(f"reducer dimension n={n} not supported")
    if kind == "crd_drop":
        mode = node.params.get("mode", "fiber")
        inner_kind = "vals" if mode == "value" else "crd"
        return (
            [("outer", "crd"), ("inner", inner_kind)],
            [("outer", "crd"), ("inner", inner_kind)],
        )
    if kind == "array":
        return [("ref", "ref")], [("val", "vals")]
    if kind == "level_writer":
        return [("crd", "crd")], []
    if kind == "vals_writer":
        return [("val", "vals")], []
    if kind == "locate":
        ins = [("crd", "crd"), ("ref", "ref")]
        if node.params.get("use_target"):
            ins.append(("target", "ref"))
        return ins, [("crd", "crd"), ("ref_found", "ref"), ("ref_in", "ref")]
    raise GraphError(f"unknown node kind {kind!r}")


class BoundGraph:
    """A bound graph: live blocks, channels, and result-writer handles."""

    def __init__(self, graph: SamGraph):
        self.graph = graph
        self.builder = Graph(graph.name)
        # Aliases onto the builder's collections (same underlying objects).
        self.blocks: List = self.builder.blocks
        self.channels: Dict[str, Channel] = self.builder.channels
        #: writer blocks keyed by IR node name
        self.writers: Dict[str, object] = {}
        self._report: Optional[SimulationReport] = None

    def run(
        self,
        max_cycles: Optional[int] = None,
        backend: Optional[str] = None,
        max_resumptions: Optional[int] = None,
    ) -> SimulationReport:
        from .builder import active_capture

        capture = active_capture()
        if capture is not None and not capture.simulate:
            self._report = SimulationReport(0, list(self.blocks))
            capture.record(self.blocks, self._report)
            return self._report
        self._report = run_blocks(
            self.blocks, max_cycles=max_cycles, backend=backend,
            max_resumptions=max_resumptions,
        )
        if capture is not None:
            capture.record(self.blocks, self._report)
        return self._report

    @property
    def cycles(self) -> int:
        if self._report is None:
            raise RuntimeError("graph has not been run")
        return self._report.cycles


def _resolve_tensor(name: str, tensors: Dict[str, FiberTensor]) -> FiberTensor:
    if name not in tensors:
        raise GraphError(f"tensor {name!r} not supplied to bind()")
    value = tensors[name]
    # Accept numpy scalars too: the vectorized data plane hands back
    # np.float64 values, which sweep code may pass straight in as alphas.
    if isinstance(value, (int, float, np.number)):
        return scalar_tensor(float(value), name=name)
    return value


def bind(
    graph: SamGraph,
    tensors: Dict[str, FiberTensor],
    record: Tuple[str, ...] = (),
) -> BoundGraph:
    """Instantiate *graph* over *tensors*; ``record`` names edges to trace.

    Edge identifiers for ``record`` are ``"src.port"`` strings; recorded
    channels keep their full token history for stream analyses.
    """
    bound = BoundGraph(graph)
    groups = fanout_groups(graph)

    # Source-port channels; fanouts split them per consumer.
    port_channel: Dict[Tuple[str, str, str, str], Channel] = {}
    builder = bound.builder
    for (src, src_port), edges in groups.items():
        rec = f"{src}.{src_port}" in record
        if len(edges) == 1:
            edge = edges[0]
            channel = builder.channel(
                f"{src}.{src_port}->{edge.dst}.{edge.dst_port}",
                kind=edge.kind, record=rec,
            )
            port_channel[(src, src_port, edge.dst, edge.dst_port)] = channel
        else:
            hub = builder.channel(f"{src}.{src_port}", kind=edges[0].kind,
                                  record=rec)
            outs = []
            for edge in edges:
                leg = builder.channel(
                    f"{src}.{src_port}->{edge.dst}.{edge.dst_port}", kind=edge.kind
                )
                port_channel[(src, src_port, edge.dst, edge.dst_port)] = leg
                outs.append(leg)
            builder.add(Fanout(hub, outs, name=f"fan:{src}.{src_port}"))
            port_channel[(src, src_port, "*", "*")] = hub

    def out_channel(node: Node, port: str, kind: str) -> Channel:
        """Channel a node should push *port* into (hub, leg, or dangling)."""
        edges = groups.get((node.name, port), [])
        if not edges:
            chan = builder.channel(f"{node.name}.{port}(dangling)", kind=kind,
                                   record=f"{node.name}.{port}" in record)
            builder.unused(chan)
            return chan
        if len(edges) == 1:
            e = edges[0]
            return port_channel[(node.name, port, e.dst, e.dst_port)]
        return port_channel[(node.name, port, "*", "*")]

    def in_channel(node: Node, port: str) -> Optional[Channel]:
        for edge in graph.in_edges(node):
            if edge.dst_port == port:
                return port_channel[(edge.src, edge.src_port, node.name, port)]
        return None

    def require(node: Node, port: str) -> Channel:
        channel = in_channel(node, port)
        if channel is None:
            raise GraphError(f"input {node.name}.{port} is not connected")
        return channel

    for node in graph.nodes.values():
        kind = node.kind
        _, outs = node_ports(node)
        out = {port: out_channel(node, port, pkind) for port, pkind in outs}
        if kind == "root":
            builder.add(RootFeeder(out["ref"], name=node.name))
        elif kind == "source":
            builder.add(
                StreamFeeder(node.params["tokens"], out["out"], name=node.name)
            )
        elif kind == "sink":
            builder.add(Sink(require(node, "in"), name=node.name))
        elif kind == "level_scanner":
            tensor = _resolve_tensor(node.params["tensor"], tensors)
            level = tensor.levels[node.params["depth"]]
            builder.add(
                make_scanner(
                    level,
                    require(node, "ref"),
                    out["crd"],
                    out["ref"],
                    in_skip=in_channel(node, "skip"),
                    name=node.name,
                )
            )
        elif kind == "repeat":
            sig, rep = make_repeater(
                require(node, "crd"), require(node, "ref"), out["ref"], name=node.name
            )
            builder.add_all([sig, rep])
        elif kind in ("intersect", "union"):
            sides_spec: List[int] = node.params["sides"]
            sides = []
            out_ref_groups = []
            for i, arity in enumerate(sides_spec):
                refs = [require(node, f"ref{i}_{j}") for j in range(arity)]
                skip = out.get(f"skip{i}") if node.params.get("skipping") else None
                if skip is not None:
                    # Side-band port: the merger holds the skip channel
                    # without registering it, so exempt it from the
                    # producerless-stream check.
                    builder.unused(skip)
                sides.append(MergeSide(require(node, f"crd{i}"), refs, skip=skip))
                out_ref_groups.append([out[f"ref{i}_{j}"] for j in range(arity)])
            cls = Intersect if kind == "intersect" else Union
            builder.add(
                cls(sides, out["crd"], out_ref_groups, name=node.name)
            )
        elif kind == "alu":
            if "const" in node.params:
                builder.add(
                    ScalarALU(
                        node.params["op"],
                        node.params["const"],
                        require(node, "a"),
                        out["val"],
                        name=node.name,
                    )
                )
            else:
                builder.add(
                    ALU(
                        node.params["op"],
                        require(node, "a"),
                        require(node, "b"),
                        out["val"],
                        name=node.name,
                    )
                )
        elif kind == "reduce":
            n = node.params.get("n", 0)
            if n == 0:
                builder.add(
                    ScalarReducer(
                        require(node, "val"),
                        out["val"],
                        empty_policy=node.params.get("empty_policy", "zero"),
                        name=node.name,
                    )
                )
            elif n == 1:
                builder.add(
                    VectorReducer(
                        require(node, "crd"),
                        require(node, "val"),
                        out["crd"],
                        out["val"],
                        flush_level=node.params.get("flush_level", 1),
                        name=node.name,
                    )
                )
            else:
                builder.add(
                    MatrixReducer(
                        require(node, "crd_outer"),
                        require(node, "crd_inner"),
                        require(node, "val"),
                        out["crd_outer"],
                        out["crd_inner"],
                        out["val"],
                        name=node.name,
                    )
                )
        elif kind == "crd_drop":
            cls = ValueDropper if node.params.get("mode") == "value" else CoordDropper
            if cls is ValueDropper:
                block = ValueDropper(
                    require(node, "outer"),
                    require(node, "inner"),
                    out["outer"],
                    out["inner"],
                    name=node.name,
                )
            else:
                block = CoordDropper(
                    require(node, "outer"),
                    require(node, "inner"),
                    out["outer"],
                    out["inner"],
                    name=node.name,
                )
            builder.add(block)
        elif kind == "array":
            tensor = _resolve_tensor(node.params["tensor"], tensors)
            builder.add(
                ArrayLoad(tensor.vals, require(node, "ref"), out["val"], name=node.name)
            )
        elif kind == "level_writer":
            if node.params.get("format", "compressed") == "compressed":
                writer = CompressedLevelWriter(require(node, "crd"), name=node.name)
            else:
                writer = UncompressedLevelWriter(
                    node.params["size"], require(node, "crd"), name=node.name
                )
            bound.writers[node.name] = writer
            builder.add(writer)
        elif kind == "vals_writer":
            writer = ValsWriter(require(node, "val"), name=node.name)
            bound.writers[node.name] = writer
            builder.add(writer)
        elif kind == "locate":
            tensor = _resolve_tensor(node.params["tensor"], tensors)
            level = tensor.levels[node.params["depth"]]
            builder.add(
                Locator(
                    level,
                    require(node, "crd"),
                    require(node, "ref"),
                    out["crd"],
                    out["ref_found"],
                    out["ref_in"],
                    in_target_ref=in_channel(node, "target"),
                    name=node.name,
                )
            )
        else:
            raise GraphError(f"cannot bind node kind {kind!r}")
    # Every bound graph is validated before it can run: kind mismatches,
    # duplicate producers, missing fanouts, and unconnected required
    # ports surface here, at bind time, naming the offending port.
    builder.validate()
    return bound


# -- segment fusion ------------------------------------------------------
#
# The compiled backend (sim/backends/compiled.py) partitions a bound
# block list into fusible segments: maximal linear chains of
# descriptor-carrying blocks joined by single-producer/single-consumer
# channels, executed as one super-block per segment.  The partition is
# purely structural — roles come from each block's
# ``TimingDescriptor.fuse_role`` — so it can also annotate DOT renderings
# (graph/dot.py) without running anything.


from dataclasses import dataclass, field


#: roles that may continue a value chain after the head
_CHAIN_INTERIOR = ("map",)
#: roles that may close a value chain (a trailing "map" also closes one)
_CHAIN_TAIL = ("map", "reduce", "sink", "write")


@dataclass
class FusedSegment:
    """One fusible segment: member block indices plus interior channels.

    ``shape`` is one of:

    * ``"chain"`` — zip/map head, map interiors, map/reduce/sink/write
      tail;
    * ``"scan_locate"`` — a scanner whose crd/ref outputs both feed one
      locator;
    * ``"merge_head"`` — a 2-ary intersect/union, optionally absorbing
      the dedicated scanner feeding each side and/or a level writer
      consuming its coordinate output;
    * ``"repeater"`` — a RepeatSigGen paired with its Repeater through
      the internal repeat-signal link.

    ``kind`` is the human-readable classification used in fusion stats
    and DOT labels: ``"value-chain"``, ``"writer-tail"`` (a chain closed
    by a writer), ``"scan-locate"``, ``"merge-head"``, ``"repeater"``.

    ``links`` holds the interior channels in flow order.  Chain and
    scan-locate execution never pushes tokens through them, so the
    engine reconstructs their token counts arithmetically; merge-head
    and repeater units keep the interior channels materialised (the
    merge chunk protocol and the repeat-signal stream are windowed) and
    fuse at the scheduling level.

    A zip head may additionally absorb one *feeder* per operand: a map
    block whose single output is that operand (e.g. the two value loads
    in front of a multiplier).  ``feeders`` holds ``(block index,
    feeder→head channel)`` pairs aligned with the head's input order,
    ``None`` for operands wired directly; feeder indices also appear in
    ``members`` (before the head) so claiming and reporting see them.
    A merge head reuses the same slot per side with ``(scanner index,
    (crd channel, ref channel))`` entries.
    """

    shape: str
    members: List[int]
    links: List[Channel] = field(default_factory=list)
    feeders: List = field(default_factory=list)
    kind: str = ""


def _fuse_role(block) -> str:
    timing = getattr(block, "timing", None)
    if timing is None or getattr(block, "drain_timed", None) is None:
        return ""
    return getattr(timing, "fuse_role", "")


def _link_ok(channel: Channel, producers, consumers) -> bool:
    """Whether *channel* can be a fused-interior link (structurally)."""
    return (
        channel.capacity is None
        and not channel.record
        and len(producers.get(channel, ())) == 1
        and len(consumers.get(channel, ())) == 1
    )


def partition_segments(blocks) -> List[FusedSegment]:
    """Partition *blocks* into fusible segments for the compiled backend.

    Returns the segments in head-index order; every block belongs to at
    most one segment and single-block "segments" are never emitted.  The
    rules (see docs/architecture.md, "segment fusion"):

    * a member joins a segment only through channels that are unbounded,
      unrecorded, and single-producer/single-consumer;
    * every input of a non-head member must come from its predecessor
      (no side entrances), and every output of a non-tail member must go
      to its successor (no side exits);
    * ``zip``/``map`` roles may head a value chain, ``map`` may continue
      it, and ``map``/``reduce``/``sink``/``write`` may close it;
    * a ``scan`` head fuses only with the ``locate`` block consuming both
      of its outputs (scanner skip ports and locator target ports break
      the pair);
    * a 2-ary ``merge`` head absorbs, per side, the scanner whose
      crd/ref outputs are exactly that side's operand pair, plus (when
      present) the ``write`` block consuming its coordinate output —
      the merge's reference outputs stay external;
    * a ``repsig`` generator fuses with the ``repeat`` block consuming
      its signal stream (the repeater's reference input stays external,
      so the no-side-entrance rule is waived for that port).
    """
    producers: Dict[Channel, List[int]] = {}
    consumers: Dict[Channel, List[int]] = {}
    for i, block in enumerate(blocks):
        for ch in block.outputs.values():
            producers.setdefault(ch, []).append(i)
        for ch in block.inputs.values():
            consumers.setdefault(ch, []).append(i)

    roles = [_fuse_role(b) for b in blocks]
    claimed = [False] * len(blocks)
    segments: List[FusedSegment] = []

    def sole_successor(i: int):
        """(next index, link channels) if *i*'s outputs all feed one
        unclaimed block through fusible links; else (None, ())."""
        outs = list(blocks[i].outputs.values())
        if not outs:
            return None, ()
        nxts = set()
        for ch in outs:
            if not _link_ok(ch, producers, consumers):
                return None, ()
            nxts.add(consumers[ch][0])
        if len(nxts) != 1:
            return None, ()
        nxt = nxts.pop()
        if claimed[nxt] or nxt == i:
            return None, ()
        # No side entrances: every input of nxt must come from i.
        for ch in blocks[nxt].inputs.values():
            if producers.get(ch, [None])[0] != i:
                return None, ()
        return nxt, outs

    # Pass 1: scanner→locator pairs (two parallel links, locator closes).
    for i, block in enumerate(blocks):
        if claimed[i] or roles[i] != "scan":
            continue
        if "in_skip" in block.inputs:  # optional port bound: pair breaks
            continue
        nxt, links = sole_successor(i)
        if nxt is None or roles[nxt] != "locate" or claimed[nxt]:
            continue
        if "in_target_ref" in blocks[nxt].inputs:
            continue
        # The pair must be wired straight: crd→crd, ref→ref.
        if (
            blocks[nxt].inputs.get("in_crd") is not block.outputs.get("out_crd")
            or blocks[nxt].inputs.get("in_ref") is not block.outputs.get("out_ref")
        ):
            continue
        claimed[i] = claimed[nxt] = True
        segments.append(
            FusedSegment("scan_locate", [i, nxt], list(links),
                         kind="scan-locate")
        )

    # Pass 2: merge heads.  A 2-ary intersect/union absorbs, per side,
    # the unclaimed scanner whose crd/ref outputs are exactly that
    # side's operand pair, and (when wired) the writer consuming its
    # coordinate output.  Reference outputs stay external, so only the
    # absorbed ports need the no-side-entrance discipline.
    def side_scanner(side):
        """(scanner index, (crd, ref) channels) feeding *side*, or None."""
        ch_crd, ch_ref = side.crd, side.refs[0]
        if not (
            _link_ok(ch_crd, producers, consumers)
            and _link_ok(ch_ref, producers, consumers)
        ):
            return None
        prev = producers[ch_crd][0]
        if (
            claimed[prev]
            or producers[ch_ref][0] != prev
            or roles[prev] != "scan"
            or "in_skip" in blocks[prev].inputs
            or len(blocks[prev].outputs) != 2
            or blocks[prev].outputs.get("out_crd") is not ch_crd
            or blocks[prev].outputs.get("out_ref") is not ch_ref
        ):
            return None
        return prev, (ch_crd, ch_ref)

    for i, block in enumerate(blocks):
        if claimed[i] or roles[i] != "merge":
            continue
        sides = getattr(block, "sides", None)
        if (
            sides is None
            or len(sides) != 2
            or any(len(s.refs) != 1 or s.skip is not None for s in sides)
        ):
            continue
        feeders = [side_scanner(side) for side in sides]
        tail: List[int] = []
        tail_links: List[Channel] = []
        out_crd = block.outputs.get("out_crd")
        if out_crd is not None and _link_ok(out_crd, producers, consumers):
            w = consumers[out_crd][0]
            if (
                w != i
                and not claimed[w]
                and roles[w] == "write"
                and len(blocks[w].inputs) == 1
            ):
                tail = [w]
                tail_links = [out_crd]
        scan_members = [f[0] for f in feeders if f is not None]
        if len(scan_members) + 1 + len(tail) < 2:
            continue
        members = scan_members + [i] + tail
        links = [ch for f in feeders if f is not None for ch in f[1]]
        links.extend(tail_links)
        for m in members:
            claimed[m] = True
        segments.append(
            FusedSegment("merge_head", members, links, feeders,
                         kind="merge-head")
        )

    # Pass 3: repeater pipelines — a RepeatSigGen whose sole output is
    # the repeat-signal stream of an unclaimed Repeater.
    for i, block in enumerate(blocks):
        if claimed[i] or roles[i] != "repsig":
            continue
        outs = list(block.outputs.values())
        if len(outs) != 1 or not _link_ok(outs[0], producers, consumers):
            continue
        nxt = consumers[outs[0]][0]
        if nxt == i or claimed[nxt] or roles[nxt] != "repeat":
            continue
        if blocks[nxt].inputs.get("in_repsig") is not outs[0]:
            continue
        claimed[i] = claimed[nxt] = True
        segments.append(
            FusedSegment("repeater", [i, nxt], [outs[0]], kind="repeater")
        )

    # Pass 4: value chains.  A head is a zip/map block that could not
    # itself be the continuation of an earlier fusible member.
    def could_continue(i: int) -> bool:
        ins = list(blocks[i].inputs.values())
        if len(ins) != 1 or not _link_ok(ins[0], producers, consumers):
            return False
        prev = producers[ins[0]][0]
        if claimed[prev] or roles[prev] not in ("zip", "map"):
            return False
        nxt, _ = sole_successor(prev)
        return nxt == i

    def feeder_for(channel, head: int):
        """(map index, link) feeding *channel* into zip head, or None."""
        if not _link_ok(channel, producers, consumers):
            return None
        prev = producers[channel][0]
        if (
            claimed[prev]
            or prev == head
            or roles[prev] != "map"
            or len(blocks[prev].inputs) != 1
            or len(blocks[prev].outputs) != 1
        ):
            return None
        return prev, channel

    for i, block in enumerate(blocks):
        if claimed[i] or roles[i] not in ("zip", "map"):
            continue
        if roles[i] == "map" and could_continue(i):
            continue  # an earlier head will pick this block up
        feeders: List = []
        if roles[i] == "zip":
            feeders = [
                feeder_for(ch, i) for ch in block.inputs.values()
            ]
        members = [i]
        links: List[Channel] = []
        cur = i
        while True:
            nxt, out_links = sole_successor(cur)
            if nxt is None or claimed[nxt] or len(out_links) != 1:
                break
            role = roles[nxt]
            if role not in _CHAIN_TAIL:
                break
            members.append(nxt)
            links.append(out_links[0])
            claimed[nxt] = True
            if role not in _CHAIN_INTERIOR:
                break  # reduce/sink close the chain
            cur = nxt
        n_feeders = sum(1 for f in feeders if f is not None)
        if len(members) + n_feeders < 2:
            for m in members[1:]:
                claimed[m] = False
            continue
        claimed[i] = True
        for entry in feeders:
            if entry is not None:
                claimed[entry[0]] = True
        members = [f[0] for f in feeders if f is not None] + members
        kind = "writer-tail" if roles[members[-1]] == "write" else "value-chain"
        segments.append(FusedSegment("chain", members, links, feeders, kind))

    segments.sort(key=lambda s: s.members[0])
    return segments


def fused_segment_names(blocks) -> List[List[str]]:
    """Block-name lists of :func:`partition_segments`, for DOT/reporting."""
    return [[blocks[i].name for i in seg.members]
            for seg in partition_segments(blocks)]


def _plan_transform_tag(block) -> Tuple:
    """Hashable identity of a member's data transform, for plan keys.

    Two segments whose members apply different ALU ops (or different
    scalar constants) must not share a plan even though their timing
    descriptors match.
    """
    from ..blocks.compute import Exp

    if isinstance(block, ScalarALU):
        return ("scalar_alu", block.op, float(block.constant))
    if isinstance(block, ALU):
        return ("alu", block.op)
    if isinstance(block, Exp):
        return ("exp", getattr(block._fn, "__name__", "fn"))
    if isinstance(block, ArrayLoad):
        return ("array_load",)
    return ()


def segment_plan_key(blocks, segment: "FusedSegment") -> Tuple:
    """Structural plan-cache key of one fused segment.

    Keys capture everything the compiled backend's composed schedule
    depends on — member classes, fuse roles, timing descriptors
    (ii/latency/ctrl cycles), transform tags, link visibility deltas,
    and feeder placement — and nothing run-specific (no clocks, no
    data), so repeated bindings of the same expression shape map to the
    same :class:`repro.jit.SegmentPlan`.  Link deltas are derived
    structurally (0 when the consumer runs later in the block list, 1
    otherwise — the rule the engine applies at init time), so keys
    computed without timed state (e.g. by ``repro graph --jit-stats``)
    match the engine's.
    """
    producers: Dict[Channel, int] = {}
    consumers: Dict[Channel, int] = {}
    for i, block in enumerate(blocks):
        for ch in block.outputs.values():
            producers[ch] = i
        for ch in block.inputs.values():
            consumers.setdefault(ch, i)
    members = []
    for i in segment.members:
        block = blocks[i]
        timing = getattr(block, "timing", None)
        if timing is None:
            desc = (1, 0, 1)
        else:
            desc = (timing.ii, timing.latency, timing.ctrl_cycles)
        members.append(
            (type(block).__name__, _fuse_role(block), desc,
             _plan_transform_tag(block))
        )
    deltas = []
    for ch in segment.links:
        p = producers.get(ch)
        c = consumers.get(ch)
        deltas.append(0 if p is not None and c is not None and c > p else 1)
    feeders = tuple(f is not None for f in segment.feeders)
    return (
        segment.shape,
        segment.kind,
        tuple(members),
        tuple(deltas),
        feeders,
    )

"""Event-driven backend: only step blocks that can make progress.

:class:`~repro.sim.backends.cycle.CycleEngine` resumes every unfinished
block's generator every cycle; a block stalled on an empty input burns a
full generator resumption (through every nested ``yield from`` frame)
per cycle just to yield ``False`` again.  On stall-heavy workloads this
is the dominant cost of the whole simulation.

:class:`EventEngine` removes it while staying *bit-identical* to the
reference model.  The engine exploits two facts:

* a block stalled in ``_get``/``_peek``/``_put`` exposes exactly which
  channel it is blocked on (``Block.waiting_on``), and resuming it
  cannot do anything until that channel receives a push (for data) or a
  pop (for space on a finite FIFO);
* within a cycle the reference engine steps blocks in list order, so a
  token pushed by block *j* is visible to a stalled block *i* in the
  same cycle iff ``i > j``.

Stalled blocks are parked on their channel via one-shot waiter
callbacks (:meth:`Channel.add_push_waiter` / ``add_pop_waiter``).  A
wake that arrives from an earlier-indexed block re-enters the current
cycle's ready heap; a wake from a later-indexed block (whose push the
reference engine would only expose next cycle) schedules for the next
cycle.  The stall cycles a sleeping block would have accrued are
credited arithmetically when it wakes, so busy/stall statistics match
the reference engine exactly, not just the final cycle count.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from .base import Engine, SimulationReport


class EventEngine(Engine):
    """Ready-set scheduler producing reference-identical cycle counts."""

    backend = "event"

    #: consecutive stalls on the same wait before a block is parked.  A
    #: streaming block that stalls for a single cycle between tokens costs
    #: more to park and wake than to simply re-step; only persistent
    #: stallers are worth the waiter machinery.
    PARK_AFTER = 3

    def run(self, max_cycles: Optional[int] = None) -> SimulationReport:
        blocks = self.blocks
        n = len(blocks)
        park_after = self.PARK_AFTER
        cycles = 0
        remaining = n
        finished = [False] * n
        parked = [False] * n      # asleep on a channel, not in any queue
        parked_at = [0] * n       # cycle index of the stall that parked it
        stalls_in_row = [0] * n   # consecutive stalled steps (hysteresis)
        queued = [False] * n      # in the current cycle's ready heap
        queued_next = [False] * n  # scheduled for the next cycle
        heap: List[int] = list(range(n))
        next_ready: List[int] = []
        # Index of the block currently stepping; wakes from pushes by a
        # block at position <= pos happened after the sleeper's turn this
        # cycle, so they take effect next cycle (reference ordering).
        pos = -1

        def make_waker(i: int):
            def wake() -> None:
                if finished[i] or queued[i] or queued_next[i]:
                    return
                if i > pos:
                    queued[i] = True
                    heapq.heappush(heap, i)
                else:
                    queued_next[i] = True
                    next_ready.append(i)

            return wake

        wakers = [make_waker(i) for i in range(n)]

        def park(i: int, at_cycle: int) -> None:
            channel, need = blocks[i]._wait
            parked[i] = True
            parked_at[i] = at_cycle
            if need == "data":
                channel.add_push_waiter(wakers[i])
            else:
                channel.add_pop_waiter(wakers[i])

        while remaining:
            progress = False
            while heap:
                i = heapq.heappop(heap)
                queued[i] = False
                if finished[i]:
                    continue
                block = blocks[i]
                pos = i
                if parked[i]:
                    channel, need = block._wait
                    if channel.empty() if need == "data" else channel.full():
                        # Raced wake: the event that woke us was undone (or
                        # never satisfied the wait); sleep again without
                        # touching parked_at so the full span is credited.
                        if need == "data":
                            channel.add_push_waiter(wakers[i])
                        else:
                            channel.add_pop_waiter(wakers[i])
                        continue
                    # Credit the stalls the reference engine would have
                    # charged for the skipped cycles (parked_at itself was
                    # charged by the stalling step; this cycle's step is
                    # accounted normally below).
                    block.stall_cycles += cycles - parked_at[i] - 1
                    parked[i] = False
                progressed = block.step()
                if progressed:
                    progress = True
                    stalls_in_row[i] = 0
                if block.finished:
                    finished[i] = True
                    remaining -= 1
                    continue
                if not progressed and block._wait is not None:
                    stalls_in_row[i] += 1
                    if stalls_in_row[i] >= park_after:
                        park(i, cycles)
                    elif not queued_next[i]:
                        queued_next[i] = True
                        next_ready.append(i)
                elif not queued_next[i]:
                    queued_next[i] = True
                    next_ready.append(i)
            if progress:
                # Same budget rule as the reference engine: raise before
                # counting a cycle that would exceed max_cycles.
                if max_cycles is not None and cycles >= max_cycles:
                    raise RuntimeError(f"exceeded max_cycles={max_cycles}")
                cycles += 1
            elif remaining:
                stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
                raise self._deadlock(cycles, stuck)
            heap = next_ready
            next_ready = []
            for i in heap:
                queued[i] = True
                queued_next[i] = False
            heapq.heapify(heap)
            pos = -1
            if not heap and remaining:
                # Every survivor is parked on a channel that will never be
                # touched again: the reference engine's next cycle would
                # step them all to no progress.
                stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
                raise self._deadlock(cycles, stuck)
        return SimulationReport(cycles, self.blocks)

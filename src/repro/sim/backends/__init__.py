"""Pluggable simulation backends.

The registry maps backend names to engine classes:

======================  ==============================================
``"cycle"``             Reference model; steps every block every cycle.
``"event"``             Event-driven; identical cycles/stats, much
                        faster on stall-heavy graphs.
``"timed-batch"``       Epoch-batched timing on the TokenBatch plane;
                        identical cycles/stats/token counts.
``"compiled"``          Timed-batch plus static segment fusion: linear
                        chains run as one super-block (composed
                        schedules, fused kernels); identical reports,
                        fastest timed backend on large workloads.
``"functional"``        Outputs only (``cycles == 0``); fastest.
======================  ==============================================

``resolve_backend(None)`` consults the ``REPRO_ENGINE`` environment
variable and falls back to ``"cycle"``, so any entry point that threads
a ``backend=None`` default through can be switched globally.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Type, Union

from .base import DeadlockError, Engine, SimulationReport
from .compiled import CompiledEngine
from .cycle import CycleEngine
from .event import EventEngine
from .functional import FunctionalEngine, SequentialFunctionalEngine
from .timed_batch import TimedBatchEngine

BACKENDS: Dict[str, Type[Engine]] = {
    CycleEngine.backend: CycleEngine,
    EventEngine.backend: EventEngine,
    TimedBatchEngine.backend: TimedBatchEngine,
    CompiledEngine.backend: CompiledEngine,
    FunctionalEngine.backend: FunctionalEngine,
    SequentialFunctionalEngine.backend: SequentialFunctionalEngine,
}

#: environment variable consulted when no backend is given explicitly
ENGINE_ENV_VAR = "REPRO_ENGINE"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve an explicit/None backend name to a registry key."""
    if backend is None:
        backend = os.environ.get(ENGINE_ENV_VAR) or CycleEngine.backend
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        )
    return backend


def get_backend(backend: Optional[str] = None) -> Type[Engine]:
    """The engine class registered under *backend* (None → default)."""
    return BACKENDS[resolve_backend(backend)]


def make_engine(
    blocks: Iterable,
    backend: Union[str, Type[Engine], None] = None,
) -> Engine:
    """Instantiate a backend over *blocks*; accepts a name or a class."""
    if isinstance(backend, type) and issubclass(backend, Engine):
        return backend(blocks)
    return get_backend(backend)(blocks)


def run_blocks(
    blocks: Iterable,
    max_cycles: Optional[int] = None,
    backend: Union[str, Type[Engine], None] = None,
    max_resumptions: Optional[int] = None,
) -> SimulationReport:
    """Convenience wrapper: build an engine and run it.

    ``max_resumptions`` is the functional backends' explicit
    token-operation budget (``max_cycles`` is advisory there — see
    :mod:`repro.sim.backends.functional`); the timed backends budget in
    cycles and reject a resumption budget.
    """
    engine = make_engine(blocks, backend=backend)
    if isinstance(engine, FunctionalEngine):
        return engine.run(max_cycles=max_cycles, max_resumptions=max_resumptions)
    if max_resumptions is not None:
        raise ValueError(
            f"max_resumptions is a functional-backend budget; the "
            f"{engine.backend!r} backend budgets in cycles (max_cycles)"
        )
    return engine.run(max_cycles=max_cycles)


__all__ = [
    "BACKENDS",
    "CompiledEngine",
    "CycleEngine",
    "DeadlockError",
    "ENGINE_ENV_VAR",
    "Engine",
    "EventEngine",
    "FunctionalEngine",
    "SequentialFunctionalEngine",
    "SimulationReport",
    "TimedBatchEngine",
    "get_backend",
    "make_engine",
    "resolve_backend",
    "run_blocks",
]

"""Compiled timed backend: static fusion of control-free segments.

:class:`CompiledEngine` produces the same bit-exact
``SimulationReport`` as :class:`~repro.sim.backends.timed_batch.
TimedBatchEngine` (and hence the reference CycleEngine), but runs a
graph-analysis pass first: the bound block list is partitioned into
*fusible segments* — maximal linear chains of descriptor-carrying
blocks joined by unbounded, unrecorded, single-producer/single-consumer
channels (:func:`repro.graph.bind.partition_segments`).  Each segment
executes as **one super-block**:

* *composed schedules* — instead of one ``rate1_schedule`` pass per
  member per window, the whole chain's busy schedules come from a
  single :func:`~repro.streams.timing.compose_rate1` call.  Because
  every stock member is fully pipelined at the same rate, each
  downstream stage collapses to an elementwise maximum (the max-plus
  accumulate is provably a no-op on an already rate-valid schedule);
* *fused data transforms* — member kernels are chained directly on the
  value arrays (gather → multiply → region sums …) without
  materialising intermediate ``TokenBatch`` pushes, stamp merges, or
  reader windows on the interior channels.  The reducer stage swaps
  its default ordered segment-sum kernel for the vectorised
  :func:`~repro.streams.batch.exact_segment_sums` (bit-identical by
  construction: pairwise association is never used);
* *arithmetic statistics* — interior channels never see a push, so
  their ``pushed_*`` counters are reconstructed from the would-be batch
  structure, and every member's busy/stall/``_tclock`` bookkeeping is
  applied from its composed schedule exactly as its own ``_t_advance``
  would have.

Five segment kinds are compiled (``report.fusion["kinds"]`` counts
them per run): ``value-chain`` and ``writer-tail`` chains plus
``scan-locate`` pairs run the composed-schedule machinery above, with
writer tails additionally capturing the writer's rate-1 commit
(crd/seg extension, fiber counts, value appends) from the chain's
schedule endpoints; ``merge-head`` segments (a two-sided
intersect/union with its dedicated upstream side scanners and an
optional compressed-writer tail) are *co-scheduled* — members run
their stock timed drains back-to-back in flow order inside one
worklist visit, preserving the merge's windowed chunk protocol
bit-for-bit while eliminating the per-epoch scheduling hops;
``repeater`` segments (``RepeatSigGen`` → ``Repeater``) replace the
per-fiber repeat loop with one vectorised pass per window span (see
:class:`_RepeaterUnit`).

Fallback ladder: a segment whose members or links fail validation at
compile time is *rejected* (members run on the plain timed-batch
plane); a fused zip head whose operand windows lose structural
alignment mid-run *dissolves* its segment the same way — both count as
``fallbacks`` in the fusion statistics; and any member that bails the
timed plane entirely drops to the engine's scalar per-cycle loop, the
same per-block ladder the timed-batch backend uses.  Dissolution is
safe at any step boundary because acquisition is two-phase: windows
are only consumed once the whole step is guaranteed to commit, and all
member state (``_tclock``, carries, reducer accumulators) is kept in
the members themselves.

The engine's ``run`` mirrors ``TimedBatchEngine.run`` line for line
outside the fusion hooks; keeping the base engine free of fusion logic
keeps the reference path auditable.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from ...jit import PLAN_CACHE, SegmentPlan, get_kernel, jit_stats
from ...streams.batch import (
    CODE_DONE,
    CODE_EMPTY,
    NO_TOKEN,
    TokenBatch,
    UnbatchableTokens,
    exact_segment_sums,
)
from ...streams.timing import compose_rate1, split_done_stamped
from ...streams.token import is_stop
from .base import SimulationReport
from .timed_batch import TimedBatchEngine

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)

#: fusion statistics of the most recent :class:`CompiledEngine` run.
#: The stock kernels return bare result arrays rather than report
#: handles, so benchmarks read the numbers from here; the same dict is
#: also attached to the returned report as ``report.fusion``.
#: ``kinds`` maps segment kind (``value-chain``, ``scan-locate``,
#: ``merge-head``, ``repeater``, ``writer-tail``) to live segment count;
#: ``total_blocks`` lets callers compute the fused-block fraction.
LAST_FUSION_STATS = {
    "segments": 0,
    "fused_blocks": 0,
    "fallbacks": 0,
    "total_blocks": 0,
    "kinds": {},
}

#: JIT statistics of the most recent :class:`CompiledEngine` run —
#: dispatcher inventory, plan-cache hit/miss deltas, and per-segment
#: plan digests.  Mirrors ``report.jit`` the way
#: :data:`LAST_FUSION_STATS` mirrors ``report.fusion``.
LAST_JIT_STATS = {}

#: sentinel returned by a unit step that must dissolve its segment
_DISSOLVE = object()


def _unary_parts(block):
    """(data_fn, empty_value) of a rate-1 unary map member, or None.

    Mirrors each block's own ``drain_timed`` transform exactly — same
    callables, same counters — so fused output values are bit-identical.
    """
    from ...blocks.array import ArrayLoad
    from ...blocks.compute import Exp, ScalarALU

    if isinstance(block, ArrayLoad):
        mem = getattr(block, "_mem_array", None)
        if mem is None:
            mem = block._mem_array = np.asarray(block.memory)

        def gather(refs, block=block, mem=mem):
            block.loads += len(refs)
            return mem[refs.astype(np.int64, copy=False)]

        return gather, block.empty_value
    if isinstance(block, ScalarALU):
        fn, const = block._fn, block.constant
        return (lambda run: fn(run, const)), fn(0.0, const)
    if isinstance(block, Exp):
        fn = block._fn
        return (
            lambda run: np.asarray([fn(v) for v in run.tolist()]),
            fn(0.0),
        )
    return None


_IDX_CACHE = np.arange(1 << 16, dtype=np.int64)


def _idx(n):
    """A read-only 0..n-1 ramp from a growing module-level cache."""
    global _IDX_CACHE
    if n > len(_IDX_CACHE):
        _IDX_CACHE = np.arange(1 << int(n - 1).bit_length(), dtype=np.int64)
    return _IDX_CACHE[:n]


def _token_order_fast(cpos, ndata):
    """`token_order_indices` via a bincount prefix sum (no searchsorted).

    Fused-local on purpose: speeding the shared helper would also speed
    the timed-batch reference this backend is benchmarked against.
    """
    ci = cpos + _idx(len(cpos))
    before = np.bincount(cpos, minlength=ndata + 1)[:ndata].cumsum()
    di = before + _idx(ndata)
    return di, ci


def _merge_fast(batch, sdata, sctrl):
    """`merge_stamps` with the bincount token order."""
    data, cpos, _ = batch.remaining_arrays()
    di, ci = _token_order_fast(cpos, len(data))
    merged = np.empty(len(di) + len(ci), dtype=np.int64)
    merged[di] = sdata
    merged[ci] = sctrl
    return merged, di, ci


def _fast_advance(member, arrivals):
    """``member._t_advance`` with the max-plus accumulate elided.

    When *arrivals* is already a valid rate-``ii`` schedule (consecutive
    steps >= ii — one cheap check), the accumulate is a provable no-op
    and the busy schedule is just ``max(arrivals, clock + idx*ii)``.
    Falls back to the member's own ``_t_advance`` (carry pending, or
    arrivals not rate-valid); bookkeeping is identical either way.
    """
    n = len(arrivals)
    if n == 0:
        return _EMPTY_I64
    if member._t_carry:
        return member._t_advance(arrivals)
    ii = member.timing.ii
    if n > 1 and not bool((arrivals[1:] - arrivals[:-1] >= ii).all()):
        return member._t_advance(arrivals)
    c = (_idx(n) * ii if ii != 1 else _idx(n)) + member._tclock
    np.maximum(arrivals, c, out=c)
    end = int(c[-1]) + ii
    member.busy_cycles += n
    member.stall_cycles += (end - member._tclock) - ii * n
    member._tclock = end
    return c


def _compose_fast(arrivals, stages):
    """`compose_rate1` with every stage elementwise, or None.

    Valid when the head arrivals are already rate-``ii0``-valid and no
    stage slows the stream down (each ``ii`` <= its predecessor's) —
    then every accumulate in the composed pass is a no-op.
    """
    clock0, ii0, _ = stages[0]
    n = len(arrivals)
    if n > 1 and not bool((arrivals[1:] - arrivals[:-1] >= ii0).all()):
        return None
    iis = [s[1] for s in stages]
    if any(iis[k] > iis[k - 1] for k in range(1, len(iis))):
        return None
    idx = _idx(n)
    c = (idx * ii0 if ii0 != 1 else idx) + clock0
    np.maximum(arrivals, c, out=c)
    out = [c]
    for clock, ii, delta in stages[1:]:
        nxt = (idx * ii if ii != 1 else idx) + clock
        prev = out[-1]
        np.maximum(prev + delta if delta else prev, nxt, out=nxt)
        out.append(nxt)
    return out


def _advance_members(members, deltas, arrivals, plan=None):
    """Composed ``_t_advance`` across a fused chain: one schedule each.

    *arrivals* is the head's token-order arrival array (already
    consumer-visible); ``deltas[k-1]`` is the interior link's visibility
    offset into member *k*.  Busy/stall/clock bookkeeping per member is
    exactly what its own ``_t_advance`` would apply.  Falls back to the
    member-by-member calls when any carry is pending (carries interact
    with the first arrival, which the composed pass does not model).

    With the JIT tier active the whole composition runs as one fused
    2-D kernel pass; *plan* (the segment's cached
    :class:`~repro.jit.SegmentPlan`) supplies the precomputed stage
    ii/delta vectors so warm runs skip rebuilding them per window.
    """
    if any(m._t_carry for m in members):
        scheds = []
        cur = np.asarray(arrivals, dtype=np.int64)
        for k, member in enumerate(members):
            if k:
                cur = cur + deltas[k - 1]
            cur = member._t_advance(cur)
            scheds.append(cur)
        return scheds
    arrivals = np.asarray(arrivals, dtype=np.int64)
    kern = get_kernel("compose_rate1")
    if kern is not None:
        nm = len(members)
        clocks = np.empty(nm, dtype=np.int64)
        for k, member in enumerate(members):
            clocks[k] = member._tclock
        if plan is not None and plan.iis is not None:
            iis, stage_deltas = plan.iis, plan.stage_deltas
        else:
            iis = np.empty(nm, dtype=np.int64)
            stage_deltas = np.empty(nm, dtype=np.int64)
            for k, member in enumerate(members):
                iis[k] = member.timing.ii
                stage_deltas[k] = 0 if k == 0 else deltas[k - 1]
        mat = kern(np.ascontiguousarray(arrivals), clocks, iis, stage_deltas)
        scheds = [mat[k] for k in range(nm)]
    else:
        stages = [
            (m._tclock, m.timing.ii, 0 if k == 0 else deltas[k - 1])
            for k, m in enumerate(members)
        ]
        scheds = _compose_fast(arrivals, stages)
        if scheds is None:
            scheds = compose_rate1(arrivals, stages)
    n = len(scheds[0])
    for member, c in zip(members, scheds):
        ii = member.timing.ii
        end = int(c[-1]) + ii
        member.busy_cycles += n
        member.stall_cycles += (end - member._tclock) - ii * n
        member._tclock = end
    return scheds


def _advance_members_sub(members, deltas, sub_idx, sub, e, n):
    """Core of the subset composed advance (validity settled by callers).

    ``sub`` is the head arrival array evaluated at ``sub_idx`` only,
    ``e`` the scalar last arrival, ``n`` the full token count.  The
    dense composed schedules are never built: the last member's schedule
    comes back evaluated at ``sub_idx`` and every member's
    busy/stall/clock bookkeeping is applied from scalar endpoints
    (``e_k = max(e_{k-1} + delta, clock + (n-1)*ii)``) — bit-identical
    to the full elementwise pass.
    """
    c = None
    for k, member in enumerate(members):
        ii = member.timing.ii
        clock = member._tclock
        delta = 0 if k == 0 else deltas[k - 1]
        ramp = (sub_idx * ii if ii != 1 else sub_idx) + clock
        if k == 0:
            c = np.maximum(sub, ramp)
        else:
            np.maximum(c + delta if delta else c, ramp, out=ramp)
            c = ramp
        e = max(e + delta, clock + (n - 1) * ii)
        end = e + ii
        member.busy_cycles += n
        member.stall_cycles += (end - clock) - ii * n
        member._tclock = end
    return c


def _advance_members_at(members, deltas, arrivals, sub_idx, known_valid):
    """Composed advance with schedules evaluated only at ``sub_idx``.

    When no chain output needs the full interior schedules (reduce/sink
    tails consume them at control positions only), the dense composed
    arrays are skipped via :func:`_advance_members_sub`.
    ``known_valid`` skips the rate-validity scan when the arrivals are
    a max of member output schedules (valid by construction).  Returns
    None when the elementwise conditions do not hold.
    """
    n = len(arrivals)
    if n == 0 or any(m._t_carry for m in members):
        return None
    ii0 = members[0].timing.ii
    if not known_valid and n > 1 and not bool(
        (arrivals[1:] - arrivals[:-1] >= ii0).all()
    ):
        return None
    iis = [m.timing.ii for m in members]
    if any(iis[k] > iis[k - 1] for k in range(1, len(iis))):
        return None
    return _advance_members_sub(
        members, deltas, sub_idx, arrivals[sub_idx], int(arrivals[-1]), n
    )


def _bump_counts(channel, ndata, ccode):
    """Channel statistics a fused interior push would have recorded."""
    n_stop = int((ccode >= 0).sum())
    n_done = int((ccode == CODE_DONE).sum())
    n_empty = int((ccode == CODE_EMPTY).sum())
    channel.pushed_data += ndata + (len(ccode) - n_stop - n_done - n_empty)
    channel.pushed_stop += n_stop
    channel.pushed_done += n_done
    channel.pushed_empty += n_empty


class _Side:
    """One operand side of a fused zip head (direct or through a feeder)."""

    __slots__ = (
        "feeder", "channel", "delta", "link", "fn", "empty_value",
        # per-acquisition state
        "reader", "window", "merged", "di", "ci", "sd", "sc",
        "data", "cpos", "ccode", "empty", "post", "tail",
    )

    def __init__(self, feeder, channel, link, parts):
        self.feeder = feeder  # feeder block or None (direct operand)
        self.channel = channel  # the channel this side actually reads
        self.link = link  # feeder→head channel (None when direct)
        self.delta = link.timed.delta if link is not None else 0
        self.fn, self.empty_value = parts if parts is not None else (None, None)

    def take(self, head_block):
        """Take this side's window; False = parked (nothing held)."""
        if self.feeder is None:
            reader = head_block._treader(self.channel)
            reader.densify_empty(0.0)
        else:
            reader = self.feeder._treader(self.channel)
        self.reader = reader
        window = reader.take_window()
        if window is None:
            return False
        if self.feeder is None:
            batch, sd, sc = window
            tail = None
        else:
            batch, sd, sc, tail = split_done_stamped(*window)
        self.window = window
        self.tail = tail
        self.sd, self.sc = sd, sc
        self.data, self.cpos, self.ccode = batch.remaining_arrays()
        return True

    def merge(self, reuse=None):
        """Interleave this side's stamps into token order.

        ``reuse`` carries another side's ``(di, ci)`` token-order
        indices when the two raw structures were already proven equal —
        the bincount/cumsum pass is skipped and only the scatter runs.
        """
        if reuse is None:
            di, ci = _token_order_fast(self.cpos, len(self.data))
        else:
            di, ci = reuse
        merged = np.empty(len(di) + len(ci), dtype=np.int64)
        merged[di] = self.sd
        merged[ci] = self.sc
        self.merged, self.di, self.ci = merged, di, ci
        if self.feeder is None:
            self.empty = None
            self.post = (len(self.data), self.cpos, self.ccode)
        else:
            empty = self.ccode == CODE_EMPTY
            self.empty = empty if empty.any() else None
            if self.empty is None:
                self.post = (len(self.data), self.cpos, self.ccode)
            else:
                keep = ~empty
                shift = np.cumsum(empty) - empty
                self.post = (
                    len(self.data) + int(empty.sum()),
                    (self.cpos + shift)[keep],
                    self.ccode[keep],
                )

    def put_back(self):
        self.reader.put_back(self.window)

    def rate_valid(self):
        """Merged arrivals already a valid rate-``ii`` feeder schedule?"""
        arr = self.merged
        ii = self.feeder.timing.ii
        return len(arr) < 2 or bool((arr[1:] - arr[:-1] >= ii).all())

    def commit_at(self, sub_idx):
        """``commit`` with the feeder schedule evaluated at ``sub_idx``.

        Requires :meth:`rate_valid` and no feeder carry (checked by the
        caller *before* either side commits): the accumulate is then a
        no-op, so the schedule at any index is ``max(arrival, clock +
        idx*ii)`` and the endpoint is a scalar.  Bookkeeping matches
        ``_fast_advance`` exactly.  Returns ``(vals, c_sub, e)`` with
        the link delta already applied to both schedule and endpoint.
        """
        feeder = self.feeder
        arr = self.merged
        n = len(arr)
        ii = feeder.timing.ii
        clock = feeder._tclock
        e = max(int(arr[-1]), clock + (n - 1) * ii)
        end = e + ii
        feeder.busy_cycles += n
        feeder.stall_cycles += (end - clock) - ii * n
        feeder._tclock = end
        c = np.maximum(arr[sub_idx], (sub_idx * ii if ii != 1 else sub_idx) + clock)
        vals = self.fn(self.data)
        if self.empty is not None:
            vals = np.insert(
                np.asarray(vals, dtype=np.float64),
                self.cpos[self.empty], self.empty_value,
            )
        ndata, _, ccode = self.post
        _bump_counts(self.link, ndata, ccode)
        if self.delta:
            np.add(c, self.delta, out=c)
            e += self.delta
        return vals, c, e

    def commit(self):
        """Advance the feeder (stats + counters) and produce the operand
        values plus the head's token-order arrival array."""
        if self.feeder is None:
            return self.data, self.merged
        c = _fast_advance(self.feeder, self.merged)
        vals = self.fn(self.data)
        if self.empty is not None:
            vals = np.insert(
                np.asarray(vals, dtype=np.float64),
                self.cpos[self.empty], self.empty_value,
            )
        ndata, _, ccode = self.post
        _bump_counts(self.link, ndata, ccode)
        if self.delta:
            # c is always a fresh schedule array — shift it in place
            np.add(c, self.delta, out=c)
        return vals, c


class _ChainUnit:
    """A fused value chain: zip/map head (the zip optionally absorbing
    one map feeder per operand), map interiors, map/reduce/sink/write
    tail.  ``step()`` returns True on progress, False when parked, or
    ``_DISSOLVE`` when the zip head's operand structures lose
    alignment."""

    __slots__ = (
        "members", "blocks", "links", "deltas", "head", "roles",
        "parts", "head_in", "tail_out", "sides", "active", "lazy_ok",
        "emitters", "kind", "plan",
    )

    def __init__(self, blocks, segment, parts):
        self.plan = None
        self.members = list(segment.members)
        n_feeders = sum(1 for f in segment.feeders if f is not None)
        spine = segment.members[n_feeders:]
        self.blocks = [blocks[i] for i in spine]
        self.links = list(segment.links)
        self.deltas = [ch.timed.delta for ch in segment.links]
        self.head = self.blocks[0]
        self.roles = [b.timing.fuse_role for b in self.blocks]
        # spine-positional (fn, empty_value) transforms; feeder
        # transforms live on their _Side instead
        self.parts = [parts.get(i) for i in spine]
        ins = list(self.head.inputs.values())
        self.head_in = ins[0] if self.roles[0] == "map" else None
        self.sides = None
        if self.roles[0] == "zip":
            self.sides = []
            for chan, entry in zip(ins, segment.feeders):
                if entry is None:
                    self.sides.append(_Side(None, chan, None, None))
                else:
                    idx, link = entry
                    feeder = blocks[idx]
                    fin = list(feeder.inputs.values())[0]
                    self.sides.append(
                        _Side(feeder, fin, link, parts[idx])
                    )
        outs = list(self.blocks[-1].outputs.values())
        # any non-reduce/sink/write tail (a zip head may itself be the
        # tail when it closed the segment purely by absorbing feeders)
        self.tail_out = (
            outs[0] if outs and self.roles[-1] in ("map", "zip") else None
        )
        # Static half of the lazy-zip precondition: reduce/sink tail
        # (only control-position schedules are ever consumed), both
        # operands through feeders no slower than the head, and a
        # non-decelerating spine — the dynamic half (carries,
        # rate-validity) is checked per acquisition.
        iis = [b.timing.ii for b in self.blocks]
        self.lazy_ok = (
            self.tail_out is None
            and self.sides is not None
            and all(
                s.feeder is not None and s.feeder.timing.ii >= iis[0]
                for s in self.sides
            )
            and all(iis[k] <= iis[k - 1] for k in range(1, len(iis)))
        )
        self.active = True

    # -- phase 1: acquire (reversible) ----------------------------------
    def _acquire_zip(self):
        blk = self.head
        side_a, side_b = self.sides
        if not side_a.take(blk):
            blk._wait = (blk.in_a, "data")
            return None
        if not side_b.take(blk):
            side_a.put_back()
            blk._wait = (blk.in_b, "data")
            return None
        if (len(side_a.data) + len(side_a.ccode) == 0
                or len(side_b.data) + len(side_b.ccode) == 0):
            side_a.put_back()
            side_b.put_back()
            blk._wait = (blk.in_a, "data")
            return None
        # When the raw structures already agree token for token, the
        # densified ones do too: one token-order pass serves both sides
        # and the post-structure comparison is settled up front.
        raw_match = (
            len(side_a.data) == len(side_b.data)
            and len(side_a.ccode) == len(side_b.ccode)
            and np.array_equal(side_a.cpos, side_b.cpos)
            and np.array_equal(side_a.ccode, side_b.ccode)
        )
        side_a.merge()
        side_b.merge((side_a.di, side_a.ci) if raw_match else None)
        na, pa, ca = side_a.post
        nb, pb, cb = side_b.post
        if not (
            (raw_match or (
                na == nb
                and np.array_equal(pa, pb)
                and np.array_equal(ca, cb)
            ))
            and (len(ca) == 0 or (ca[:-1] >= 0).all())
            and (len(ca) == 0 or ca[-1] >= CODE_DONE)
        ):
            # Same structures the unfused ALU would route to its general
            # loop: hand the windows back untouched and dissolve.
            side_a.put_back()
            side_b.put_back()
            return _DISSOLVE
        ends_done = bool(len(ca)) and int(ca[-1]) == CODE_DONE
        if (
            self.lazy_ok
            and not side_a.feeder._t_carry
            and not side_b.feeder._t_carry
            and not any(m._t_carry for m in self.blocks)
            and side_a.rate_valid()
            and side_b.rate_valid()
        ):
            # Lazy path: neither the dense feeder schedules nor the
            # dense zip arrival array are built — everything downstream
            # reads schedules at the control positions only.  (The zip
            # arrival is a max of rate-valid feeder schedules, hence
            # rate-valid by construction.)
            if side_a.empty is None:
                ci = side_a.ci
            elif side_b.empty is None:
                ci = side_b.ci
            else:
                ci = pa + _idx(len(ca))
            va, csa, ea = side_a.commit_at(ci)
            vb, csb, eb = side_b.commit_at(ci)
            vals = blk._fn(va, vb)
            np.maximum(csa, csb, out=csa)
            lazy = (csa, max(ea, eb), len(side_a.merged))
            return (vals, pa, ca), None, None, ci, ends_done, None, lazy
        # phase 2 for the operand sides: feeders advance + transform
        va, arr_a = side_a.commit()
        vb, arr_b = side_b.commit()
        # token-order indices of the post-feeder structure (reuse a
        # side's own when its input structure was already dense)
        if side_a.empty is None:
            di, ci = side_a.di, side_a.ci
        elif side_b.empty is None:
            di, ci = side_b.di, side_b.ci
        else:
            di, ci = _token_order_fast(pa, na)
        vals = blk._fn(va, vb)
        # both arrival arrays are fresh — reuse one for the zip max
        np.maximum(arr_a, arr_b, out=arr_a)
        return (vals, pa, ca), arr_a, di, ci, ends_done, None, None

    def _acquire_map(self):
        blk = self.head
        reader = blk._treader(self.head_in)
        window = reader.take_window()
        if window is None:
            blk._wait = (self.head_in, "data")
            return None
        head, sd, sc, tail = split_done_stamped(*window)
        merged, di, ci = _merge_fast(head, sd, sc)
        if len(merged) == 0:
            blk._wait = (self.head_in, "data")
            return None
        data, cpos, ccode = head.remaining_arrays()
        fn, empty_value = self.parts[0]
        vals = fn(data)
        cd_src = None
        empty = ccode == CODE_EMPTY
        if empty.any():
            # N tokens become data at their stream position, exactly as
            # _t_unary_window densifies them; the token-order schedule
            # indices are recomputed for the new structure.
            vals = np.insert(
                np.asarray(vals, dtype=np.float64), cpos[empty], empty_value
            )
            keep = ~empty
            shift = np.cumsum(empty) - empty
            cpos = (cpos + shift)[keep]
            ccode = ccode[keep]
            di, ci = _token_order_fast(cpos, len(vals))
        ends_done = bool(len(ccode)) and int(ccode[-1]) == CODE_DONE
        return (vals, cpos, ccode), merged, di, ci, ends_done, tail, None

    # -- phase 2: commit (cannot fail) ----------------------------------
    def _commit_reduce(self, blk, vals, cpos, ccode, cctrl, ends_done):
        out = blk._tbuilder(blk.out_val)
        data = np.asarray(vals, dtype=np.float64)
        if len(ccode) == 0:
            if len(data):
                blk._acc_parts.append(data)
                blk._acc_saw = True
            blk._wait = (blk.in_val, "data")
            return
        sums, emit, elevated, pref = blk._region_sums(
            data, cpos, ccode, sums_fn=exact_segment_sums
        )
        out.data_with_ctrl(
            sums[emit], pref[elevated], ccode[elevated] - 1,
            cctrl[emit], cctrl[elevated],
        )
        if ends_done:
            out.ctrl(CODE_DONE, int(cctrl[-1]))
            out.flush()
            return
        rest = data[int(cpos[-1]):]
        if len(rest):
            blk._acc_parts.append(rest)
            blk._acc_saw = True
        out.flush()

    @staticmethod
    def _commit_write(blk, vals, cpos, ccode, ends_done):
        """Writer-tail subset evaluation: the writer stores the chain's
        final values/structure directly; no schedule array is consumed
        (a writer emits nothing), only its composed busy/stall advance,
        which the caller already applied.  Interior chain streams never
        carry ``N`` after the head stage, so the writers' densify steps
        are no-ops by construction."""
        from ...blocks.writer import CompressedLevelWriter, ValsWriter
        from ...formats.compressed import CompressedLevel
        from ...formats.dense import DenseLevel

        if isinstance(blk, ValsWriter):
            blk.vals.extend(np.asarray(vals, dtype=np.float64).tolist())
        elif isinstance(blk, CompressedLevelWriter):
            base = len(blk.crd)
            blk.crd.extend(np.asarray(vals).tolist())
            blk.seg.extend((base + cpos[ccode >= 0]).tolist())
            if ends_done:
                if blk.seg[-1] != len(blk.crd):  # unterminated fiber
                    blk.seg.append(len(blk.crd))
                blk._level = CompressedLevel(blk.seg, blk.crd)
        else:  # UncompressedLevelWriter
            blk._fibers += int((ccode >= 0).sum())
            if ends_done:
                blk._level = DenseLevel(
                    blk.size, num_fibers=max(1, blk._fibers)
                )

    def step(self):
        if self.blocks[-1].finished:
            return False
        acquired = (
            self._acquire_zip() if self.roles[0] == "zip"
            else self._acquire_map()
        )
        if acquired is None:
            return False
        if acquired is _DISSOLVE:
            return _DISSOLVE
        (vals, cpos, ccode), merged, di, ci, ends_done, tail, lazy = acquired
        cctrl = None
        if lazy is not None:
            # validity (carries, rate, ii ordering) settled in acquire
            sub, e, ntok = lazy
            cctrl = _advance_members_sub(
                self.blocks, self.deltas, ci, sub, e, ntok
            )
        elif self.tail_out is None:
            # reduce/sink tails only read the tail schedule at control
            # positions; a zip arrival built from two feeder output
            # schedules is rate-valid by construction (max of schedules)
            head_ii = self.blocks[0].timing.ii
            known = self.sides is not None and all(
                s.feeder is not None and s.feeder.timing.ii >= head_ii
                for s in self.sides
            )
            cctrl = _advance_members_at(
                self.blocks, self.deltas, merged, ci, known
            )
        if cctrl is None:
            scheds = _advance_members(
                self.blocks, self.deltas, merged, self.plan
            )
            cctrl = scheds[-1][ci]
        else:
            scheds = None
        for k in range(1, len(self.blocks)):
            blk = self.blocks[k]
            _bump_counts(self.links[k - 1], len(vals), ccode)
            role = self.roles[k]
            if role == "map":
                fn, _ = self.parts[k]
                vals = fn(vals)
                # interior streams never carry N after the head stage,
                # so the structure (and di/ci) is unchanged
            elif role == "reduce":
                self._commit_reduce(blk, vals, cpos, ccode, cctrl, ends_done)
            elif role == "write":
                self._commit_write(blk, vals, cpos, ccode, ends_done)
            else:  # sink
                blk.tokens.extend(TokenBatch(vals, cpos, ccode).tokens())
        if self.tail_out is not None:
            out = self.blocks[-1]._tbuilder(self.tail_out)
            out.data_with_ctrl(vals, cpos, ccode, scheds[-1][di], scheds[-1][ci])
            out.flush()
        if ends_done:
            if tail is not None:
                self.head_in.timed_requeue_front(*tail)
            if self.sides is not None:
                for side in self.sides:
                    if side.feeder is not None:
                        if side.tail is not None:
                            side.channel.timed_requeue_front(*side.tail)
                        side.feeder.finished = True
                        side.feeder._wait = None
            for blk in self.blocks:
                blk.finished = True
                blk._wait = None
        else:
            if self.roles[0] == "map":
                self.head._wait = (self.head_in, "data")
            else:
                self.head._wait = (self.head.in_a, "data")
                for side in self.sides:
                    if side.feeder is not None:
                        side.feeder._wait = (side.channel, "data")
            tail_blk = self.blocks[-1]
            if not tail_blk.finished and self.roles[-1] != "sink":
                tail_blk._wait = (
                    list(tail_blk.inputs.values())[0], "data"
                )
        return True


class _ScanLocateUnit:
    """A fused scanner→locator pair.

    Runs the scanner's own timed loop on its real input, but every
    emission chunk is probed through the locator inline — the interior
    crd/ref channels never see a push, a merge, or a window.  Chunk
    boundaries are schedule-neutral (``rate1_schedule`` composes over
    splits), so stats and output stamps are bit-identical to the
    unfused pair."""

    __slots__ = (
        "members", "scan", "loc", "links", "delta", "active",
        "emitters", "kind", "plan",
    )

    def __init__(self, blocks, segment):
        self.plan = None
        self.members = list(segment.members)
        self.scan = blocks[segment.members[0]]
        self.loc = blocks[segment.members[1]]
        self.links = list(segment.links)
        self.delta = self.links[0].timed.delta
        self.active = True

    def _probe(self, builders, dc, dr, pc, cc, arr_tok, di, ci, sched=None):
        """Locator window math over one scanner emission chunk (mirrors
        ``Locator._locate_window_timed`` with precomputed indices).

        *sched* is an optional precomputed busy schedule (the sparse
        composed-advance path); the locator's bookkeeping is then applied
        here exactly as its ``_t_advance`` would."""
        loc = self.loc
        m = len(dc)
        if m == 0 and len(cc) == 0:
            return
        if sched is None:
            c = _fast_advance(loc, arr_tok)
        else:
            c = sched
            ii = loc.timing.ii
            end = int(c[-1]) + ii
            loc.busy_cycles += len(c)
            loc.stall_cycles += (end - loc._tclock) - ii * len(c)
            loc._tclock = end
        dstamps, cstamps = c[di], c[ci]
        found, hit = loc.level.locate_arrays(loc._loc_target, dc)
        loc.probes += m
        kept = int(hit.sum())
        loc.hits += kept
        if kept == m:
            for builder, data in zip(builders, (dc, found, dr)):
                builder.data_with_ctrl(data, pc, cc, dstamps, cstamps)
        else:
            prefix = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(hit)]
            )
            miss_idx = np.flatnonzero(~hit)
            positions = np.concatenate([pc, miss_idx])
            codes = np.concatenate(
                [cc, np.full(len(miss_idx), CODE_EMPTY, dtype=np.int64)]
            )
            stamps = np.concatenate([cstamps, dstamps[~hit]])
            tiebreak = np.concatenate(
                [np.zeros(len(pc), dtype=np.int64),
                 np.ones(len(miss_idx), dtype=np.int64)]
            )
            order = np.lexsort((tiebreak, positions))
            for builder, data in zip(builders, (dc[hit], found[hit], dr[hit])):
                builder.data_with_ctrl(
                    data, prefix[positions][order], codes[order],
                    dstamps[hit], stamps[order],
                )

    def _ctrl_event(self, builders, code, cyc):
        """One control token through both planes (a 1-token chunk)."""
        for link in self.links:
            _bump_counts(link, 0, np.asarray([code], dtype=np.int64))
        self._probe(
            builders, _EMPTY_F64, _EMPTY_F64,
            np.zeros(1, dtype=np.int64),
            np.asarray([code], dtype=np.int64),
            np.asarray([cyc + self.delta], dtype=np.int64),
            _EMPTY_I64, np.zeros(1, dtype=np.int64),
        )

    def step(self):
        scan, loc = self.scan, self.loc
        if scan.finished:
            return False
        level = scan.level
        reader = scan._treader(scan.in_ref)
        builders = [loc._tbuilder(ch) for ch in loc._outs()]
        delta = self.delta
        progressed = False

        def park():
            for builder in builders:
                builder.flush()
            scan._wait = (scan.in_ref, "data")
            loc._wait = (loc.in_crd, "data")
            return progressed

        while True:
            if scan._after_fiber:
                token, stamp = reader.peek()
                if token is NO_TOKEN:
                    return park()
                if is_stop(token):
                    reader.pop()
                    level_code = token.level + 1
                else:
                    level_code = 0
                cyc = scan._t_event(stamp)
                self._ctrl_event(builders, level_code, cyc)
                scan._fiber_index += 1
                scan._after_fiber = False
                progressed = True
                continue
            ctrl = reader.front_ctrl()
            if ctrl is None:
                refs, stamps = reader.pop_run()
                n = len(refs)
                if n == 0:
                    return park()
                crds, children, lens = level.fiber_arrays(refs)
                lens = np.asarray(lens, dtype=np.int64)
                ev_per_ref = lens.copy()
                if n > 1:
                    ev_per_ref[: n - 1] += 1
                total = int(ev_per_ref.sum())
                starts = np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(ev_per_ref)[:-1]]
                )
                stop_idx = (starts + lens)[: n - 1]
                breaks = np.cumsum(lens[:-1])
                zeros = np.zeros(len(breaks), dtype=np.int64)
                for link in self.links:
                    _bump_counts(link, len(crds), zeros)
                ii = scan.timing.ii
                if total and ii == loc.timing.ii and not loc._t_carry:
                    # Sparse composed advance.  Arrival constraints only
                    # exist at fiber starts/stops, so both members' busy
                    # schedules are ramps between those events:
                    # ``c[k] = offs[seg(k)] + k*ii`` with ``offs`` the
                    # running max of ``stamp - pos*ii`` clipped at the
                    # clock — the dense arrival array and its max-plus
                    # accumulates are never built.  Bit-identical to
                    # ``scan._t_advance`` + the locator advance.
                    if n > 1:
                        pos = np.empty(2 * n - 1, dtype=np.int64)
                        val = np.empty(2 * n - 1, dtype=np.int64)
                        pos[0::2] = starts
                        pos[1::2] = stop_idx
                        val[0::2] = np.where(lens > 0, stamps, 0)
                        val[1::2] = stamps[1:]
                    else:
                        pos = starts
                        val = np.where(lens > 0, stamps, 0)
                    if scan._t_carry:
                        if scan._t_carry > val[0]:
                            val[0] = scan._t_carry
                        scan._t_carry = 0
                    span = (total - 1) * ii + ii
                    kern = get_kernel("scan_sched")
                    if kern is not None:
                        sched, off_last = kern(
                            np.ascontiguousarray(pos),
                            np.ascontiguousarray(val),
                            total, ii, scan._tclock, delta, loc._tclock,
                        )
                        end = int(off_last) + span
                    else:
                        offs = np.maximum.accumulate(
                            val - (pos * ii if ii != 1 else pos)
                        )
                        np.maximum(offs, scan._tclock, out=offs)
                        end = int(offs[-1]) + span
                        offs_l = np.maximum(offs + delta, loc._tclock)
                        ramp = _idx(total) * ii if ii != 1 else _idx(total)
                        sched = np.repeat(offs_l, np.diff(pos, append=total))
                        sched += ramp
                    scan.busy_cycles += total
                    scan.stall_cycles += (end - scan._tclock) - ii * total
                    scan._tclock = end
                    emit_mask = np.ones(total, dtype=bool)
                    emit_mask[stop_idx] = False
                    self._probe(
                        builders, crds, children, breaks, zeros,
                        None, np.flatnonzero(emit_mask), stop_idx,
                        sched=sched,
                    )
                elif total:
                    arrivals = np.zeros(total, dtype=np.int64)
                    has_fiber = lens > 0
                    arrivals[starts[has_fiber]] = stamps[has_fiber]
                    if n > 1:
                        np.maximum.at(arrivals, stop_idx, stamps[1:])
                    c = scan._t_advance(arrivals)
                    emit_mask = np.ones(total, dtype=bool)
                    emit_mask[stop_idx] = False
                    self._probe(
                        builders, crds, children, breaks, zeros,
                        c + delta, np.flatnonzero(emit_mask), stop_idx,
                    )
                scan._fiber_index += n - 1
                scan._after_fiber = True
                scan._t_defer(int(stamps[-1]))
                progressed = True
                continue
            _, stamp = reader.pop()
            progressed = True
            if ctrl == CODE_DONE:
                cyc = scan._t_event(stamp)
                self._ctrl_event(builders, CODE_DONE, cyc)
                for builder in builders:
                    builder.flush()
                for blk in (scan, loc):
                    blk.finished = True
                    blk._wait = None
                return True
            if ctrl == CODE_EMPTY:
                # An empty reference scans as an empty fiber: no event,
                # no emission; the closing stop is gated by this token.
                scan._t_defer(stamp)
                scan._after_fiber = True
                continue
            # Stray stop: one pass-through event, one level up.
            cyc = scan._t_event(stamp)
            self._ctrl_event(builders, ctrl + 1, cyc)
            scan._fiber_index += 1


class _MergeHeadUnit:
    """A fused 2-ary intersect/union head: the merge co-scheduled with
    its per-side scanner feeders and an optional level-writer tail on
    its coordinate output.

    The merge's chunk protocol is windowed — each epoch advance is gated
    by whole fiber chunks from *both* sides (``_chunk_status`` /
    ``_merge_events``), so the interior channels stay materialised and
    every member runs its own stock ``drain_timed``.  Fusion here is a
    scheduling contraction: one ``step()`` services scanners → merge →
    writer back to back in flow order, so a fiber chunk crosses the
    whole segment in a single worklist visit instead of one wake/visit
    round trip per member.  Counters, stamps, and outputs are the
    members' own — bit-identity with the unfused plane is by
    construction.  Any member that bails the timed plane mid-run
    surfaces as ``_DISSOLVE`` and the engine drops the segment."""

    __slots__ = ("members", "blocks", "active", "emitters", "kind", "plan")

    def __init__(self, blocks, segment):
        self.plan = None
        self.members = list(segment.members)
        self.blocks = [blocks[i] for i in segment.members]
        self.active = True

    def step(self):
        progressed = False
        for blk in self.blocks:
            if blk.finished:
                continue
            if blk.drain_timed():
                progressed = True
            if not blk._timed_ok:
                return _DISSOLVE
        return progressed


class _RepeaterUnit:
    """A fused RepeatSigGen→Repeater pipeline with a vectorised repeat
    stage.

    The signal generator runs its stock drain (a uniform rate-1 map
    pushing pure-control batches onto the real repeat-signal link), so
    its schedule, counters, and channel statistics are untouched.  The
    repeat stage replays ``Repeater.drain_timed`` with one change:
    *regular spans* — a leading run of ``R`` codes plus as many complete
    ``S0``-closed driver fibers as the reference stream has data for —
    collapse to one batch: a single ``_t_advance`` over the span's
    signal stamps with each reference pop's arrival folded in at its
    fiber-head position, one ``np.repeat`` over the reference run, one
    builder push.  Equivalence with the token-by-token loop is exact:
    ``rate1_schedule`` composes over arbitrary splits of the arrival
    sequence (the clock carries), ``_t_event`` is the one-token case of
    the same recurrence, and ``_t_defer`` is a max folded into the next
    event's gate — which is precisely the positional fold applied here.
    Elevated stops, folds, ``N`` references, empty-fiber pairings, and
    done handling run the stock branches verbatim."""

    __slots__ = ("members", "sig", "rep", "active", "emitters", "kind", "plan")

    def __init__(self, blocks, segment):
        self.plan = None
        self.members = list(segment.members)
        self.sig = blocks[segment.members[0]]
        self.rep = blocks[segment.members[1]]
        self.active = True

    def step(self):
        sig, rep = self.sig, self.rep
        progressed = False
        if not sig.finished:
            if sig.drain_timed():
                progressed = True
            if not sig._timed_ok:
                return _DISSOLVE
        if not rep.finished:
            if self._drain_rep():
                progressed = True
            if not rep._timed_ok:
                return _DISSOLVE
        return progressed

    @staticmethod
    def _flat_sig(rd_sig):
        """``(codes, stamps)`` over the reader's pure-control prefix.

        Repeat-signal batches carry no data tokens, so in practice this
        is the whole held window; a data-carrying batch ends the prefix
        and the remaining tokens take the token-exact branches."""
        codes, stamps = [], []
        for batch, _, sctrl in rd_sig.held:
            if batch._d < len(batch.data):
                break
            c = batch._c
            if c < len(batch.ctrl_code):
                codes.append(batch.ctrl_code[c:])
                stamps.append(sctrl[c:])
        if not codes:
            return _EMPTY_I64, _EMPTY_I64
        if len(codes) == 1:
            return codes[0], stamps[0]
        return np.concatenate(codes), np.concatenate(stamps)

    @staticmethod
    def _consume_sig(rd_sig, n):
        """Advance the reader past *n* leading control tokens (all from
        data-exhausted batches, so cursor bumps keep stamp alignment)."""
        for batch, _, _ in rd_sig.held:
            if n <= 0:
                break
            c = batch._c
            take = min(n, len(batch.ctrl_code) - c)
            batch._c = c + take
            n -= take
        rd_sig._trim()

    def _drain_rep(self):
        from ...blocks.base import BlockError
        from ...streams.batch import CODE_REPEAT
        from ...streams.token import is_data, is_done, is_empty, is_stop

        rep = self.rep
        rd_ref = rep._treader(rep.in_ref)
        rd_sig = rep._treader(rep.in_repsig)
        out = rep._tbuilder(rep.out_ref)
        progressed = False
        # Flat view of the signal window plus cursors: token position,
        # index into the precomputed control positions, and a pointer to
        # the next non-S0 control.  Precomputing once keeps the span
        # loop linear in the window size; any scalar reader consumption
        # invalidates the view (codes = None).
        codes = stamps = ends_all = nonclose = None
        pos = ei = nci = 0

        def park(channel):
            out.flush()
            rep._wait = (channel, "data")
            return progressed

        while True:
            if rep._rep_fold is not None:
                token, s = rd_ref.peek()
                if token is NO_TOKEN:
                    return park(rep.in_ref)
                if not (is_stop(token) and token.level == rep._rep_fold - 1):
                    raise BlockError(
                        f"{rep.name}: driver stop S{rep._rep_fold} expects "
                        f"reference stop S{rep._rep_fold - 1}, got {token!r}"
                    )
                rd_ref.pop()
                rep._t_defer(s)
                rep._rep_fold = None
                progressed = True
                continue
            if rep._rep_ref is NO_TOKEN:
                token, s = rd_ref.peek()
                if token is NO_TOKEN:
                    return park(rep.in_ref)
                if is_data(token) or is_empty(token):
                    rd_ref.pop()
                    rep._t_defer(s)
                    rep._rep_ref = token
                    progressed = True
                    continue
                signal, s_sig = rd_sig.peek()
                if signal is NO_TOKEN:
                    return park(rep.in_repsig)
                rd_ref.pop()
                rd_sig.pop()
                codes = None
                cyc = rep._t_event(max(s, s_sig))
                progressed = True
                if is_done(token):
                    if not is_done(signal):
                        raise BlockError(
                            f"{rep.name}: driver stream out of sync at D "
                            f"({signal!r})"
                        )
                    out.ctrl(CODE_DONE, cyc)
                    out.flush()
                    rep.finished = True
                    rep._wait = None
                    return True
                if not (is_stop(signal) and signal.level == token.level + 1):
                    raise BlockError(
                        f"{rep.name}: reference stop {token!r} expects driver "
                        f"stop S{token.level + 1}, got {signal!r}"
                    )
                out.ctrl(signal.level, cyc)
                continue
            if is_empty(rep._rep_ref):
                # N references repeat as control runs — token-exact.
                repeats, s_r = rd_sig.pop_repeat_run()
                codes = None
                if repeats:
                    c = rep._t_advance(s_r)
                    out.ctrl_run(CODE_EMPTY, c)
                    progressed = True
                    continue
                signal, s_sig = rd_sig.peek()
                if signal is NO_TOKEN:
                    return park(rep.in_repsig)
                if not is_stop(signal):
                    raise BlockError(
                        f"{rep.name}: driver stream ended mid-fiber "
                        f"({signal!r})"
                    )
                rd_sig.pop()
                cyc = rep._t_event(s_sig)
                progressed = True
                out.ctrl(signal.level, cyc)
                if signal.level >= 1:
                    rep._rep_fold = signal.level
                rep._rep_ref = NO_TOKEN
                continue
            # A data reference is pending: vectorise the regular span.
            if codes is None:
                codes, stamps = self._flat_sig(rd_sig)
                pos, ei, nci = 0, 0, 0
                kern = get_kernel("repsig_ends")
                if kern is not None and len(codes):
                    ends_all, nonclose = kern(
                        np.ascontiguousarray(codes), CODE_REPEAT
                    )
                else:
                    ends_all = np.flatnonzero(codes != CODE_REPEAT)
                    nonclose = np.flatnonzero(codes[ends_all] != 0)
            if pos >= len(codes):
                # Held window exhausted (or not pure control): fall back
                # to the stock token-exact branch for the remainder.
                repeats, s_r = rd_sig.pop_repeat_run()
                codes = None
                if repeats:
                    c = rep._t_advance(s_r)
                    out.data(np.full(repeats, rep._rep_ref), c)
                    progressed = True
                    continue
                signal, s_sig = rd_sig.peek()
                if signal is NO_TOKEN:
                    return park(rep.in_repsig)
                if not is_stop(signal):
                    raise BlockError(
                        f"{rep.name}: driver stream ended mid-fiber "
                        f"({signal!r})"
                    )
                rd_sig.pop()
                cyc = rep._t_event(s_sig)
                progressed = True
                out.ctrl(signal.level, cyc)
                if signal.level >= 1:
                    rep._rep_fold = signal.level
                rep._rep_ref = NO_TOKEN
                continue
            if ei >= len(ends_all):
                # Window tail is one partial R-run: emit it whole, keep
                # the reference pending for the next window.
                k = len(codes) - pos
                c = rep._t_advance(stamps[pos:])
                out.data(np.full(k, rep._rep_ref), c)
                self._consume_sig(rd_sig, k)
                pos = len(codes)
                progressed = True
                continue
            while nci < len(nonclose) and nonclose[nci] < ei:
                nci += 1
            nreg = (
                len(ends_all) - ei
                if nci >= len(nonclose)
                else int(nonclose[nci]) - ei
            )
            if nreg == 0:
                # The pending fiber closes with a non-S0 code: emit its
                # R-run (possibly empty) then run the stock stop branch.
                k = int(ends_all[ei]) - pos
                if k:
                    c = rep._t_advance(stamps[pos:pos + k])
                    out.data(np.full(k, rep._rep_ref), c)
                    self._consume_sig(rd_sig, k)
                    progressed = True
                signal, s_sig = rd_sig.peek()
                if not is_stop(signal):
                    raise BlockError(
                        f"{rep.name}: driver stream ended mid-fiber "
                        f"({signal!r})"
                    )
                rd_sig.pop()
                cyc = rep._t_event(s_sig)
                out.ctrl(signal.level, cyc)
                if signal.level >= 1:
                    rep._rep_fold = signal.level
                rep._rep_ref = NO_TOKEN
                pos = int(ends_all[ei]) + 1
                ei += 1
                progressed = True
                continue
            # nreg complete S0-closed fibers; fibers beyond the first
            # need a data reference each from the front run.
            J = min(nreg, 1 + rd_ref.run_length())
            bounds = ends_all[ei:ei + J] - pos
            span = int(bounds[-1]) + 1
            refs1, s_refs = rd_ref.pop_run_upto(J - 1)
            arrivals = np.array(stamps[pos:pos + span])
            if J > 1:
                # Each reference pop's _t_defer lands on the following
                # fiber's first event — a positional max into its gate.
                heads = bounds[:-1] + 1
                arrivals[heads] = np.maximum(arrivals[heads], s_refs)
            c = rep._t_advance(arrivals)
            r_counts = np.diff(bounds, prepend=-1) - 1
            ref0 = np.asarray([rep._rep_ref])
            refs_all = np.concatenate([ref0, refs1]) if J > 1 else ref0
            mask = np.ones(span, dtype=bool)
            mask[bounds] = False
            out.data_with_ctrl(
                np.repeat(refs_all, r_counts),
                np.cumsum(r_counts),
                np.zeros(J, dtype=np.int64),
                c[mask],
                c[bounds],
            )
            self._consume_sig(rd_sig, span)
            pos += span
            ei += J
            rep._rep_ref = NO_TOKEN
            progressed = True


class CompiledEngine(TimedBatchEngine):
    """Timed-batch engine with statically fused super-block segments."""

    backend = "compiled"

    def _compile_segments(self, blocks, timed):
        """Validate the structural partition against run-time state.

        Rejection (→ plain timed-batch execution for the members) when:
        a member is off the timed plane, an interior link lost its timed
        state or holds prefilled tokens, or a chain member's transform
        cannot be resolved to a vectorised kernel.
        """
        from ...blocks.writer import (
            CompressedLevelWriter,
            UncompressedLevelWriter,
            ValsWriter,
        )
        from ...graph.bind import partition_segments, segment_plan_key

        units = {}
        plans = []
        stats = {
            "segments": 0,
            "fused_blocks": 0,
            "fallbacks": 0,
            "total_blocks": len(blocks),
            "kinds": {},
        }
        writer_types = (ValsWriter, CompressedLevelWriter,
                        UncompressedLevelWriter)
        for seg in partition_segments(blocks):
            ok = all(timed[i] for i in seg.members)
            interior = list(seg.links)
            if seg.shape == "chain":
                # merge-head feeders describe channel *pairs* already in
                # seg.links; only chain feeders add interior channels
                interior += [f[1] for f in seg.feeders if f is not None]
            for ch in interior:
                ok = ok and (
                    ch.timed is not None
                    and not ch.queue
                    and not ch.timed.pending
                    and ch.capacity is None
                    and not ch.record
                )
            unit = None
            if ok and seg.shape == "chain":
                parts = {}
                for i in seg.members:
                    role = blocks[i].timing.fuse_role
                    if role == "map":
                        part = _unary_parts(blocks[i])
                        if part is None:
                            ok = False
                            break
                        parts[i] = part
                    elif role == "write" and not isinstance(
                        blocks[i], writer_types
                    ):
                        # only the single-input writers have a captured
                        # commit; anything exotic runs unfused
                        ok = False
                        break
                if ok:
                    unit = _ChainUnit(blocks, seg, parts)
            elif ok and seg.shape == "scan_locate":
                ok = seg.links[0].timed.delta == seg.links[1].timed.delta
                if ok:
                    unit = _ScanLocateUnit(blocks, seg)
            elif ok and seg.shape == "merge_head":
                ok = all(
                    isinstance(blocks[i], writer_types)
                    for i in seg.members
                    if blocks[i].timing.fuse_role == "write"
                )
                if ok:
                    unit = _MergeHeadUnit(blocks, seg)
            elif ok and seg.shape == "repeater":
                unit = _RepeaterUnit(blocks, seg)
            else:
                ok = False
            if not ok:
                stats["fallbacks"] += 1
                continue
            stats["segments"] += 1
            stats["fused_blocks"] += len(seg.members)
            stats["kinds"][seg.kind] = stats["kinds"].get(seg.kind, 0) + 1
            interior_ids = {id(ch) for ch in interior}
            unit.kind = seg.kind
            unit.emitters = [
                m for m in seg.members
                if any(
                    id(ch) not in interior_ids
                    for ch in blocks[m].outputs.values()
                )
            ]
            key = segment_plan_key(blocks, seg)
            cached = key in PLAN_CACHE
            unit.plan = PLAN_CACHE.get(
                key, lambda k=key, s=seg, u=unit: self._build_plan(k, s, u)
            )
            plans.append({
                "kind": seg.kind,
                "members": len(seg.members),
                "key": unit.plan.digest,
                "cached": cached,
            })
            for i in seg.members:
                units[i] = unit
        return units, stats, plans

    @staticmethod
    def _build_plan(key, segment, unit):
        """Freeze a chain unit's stage ii/delta vectors into its plan.

        Non-chain shapes carry no composed-schedule parameters (their
        scheduling state is per-window), so their plans cache only the
        key/kind identity for reporting.
        """
        iis = stage_deltas = None
        if segment.shape == "chain":
            nm = len(unit.blocks)
            iis = np.fromiter(
                (b.timing.ii for b in unit.blocks), np.int64, nm
            )
            stage_deltas = np.zeros(nm, dtype=np.int64)
            if len(unit.deltas):
                stage_deltas[1:] = unit.deltas
        return SegmentPlan(key, segment.kind, iis, stage_deltas)

    def run(self, max_cycles: Optional[int] = None) -> SimulationReport:
        blocks = self.blocks
        n = len(blocks)
        producers = {}
        consumers = {}
        for i, block in enumerate(blocks):
            for ch in block.outputs.values():
                producers[ch] = i
            for ch in block.inputs.values():
                consumers[ch] = i
        channels = list(dict.fromkeys(list(producers) + list(consumers)))

        # -- classification (identical to TimedBatchEngine) ----------------
        timed = [
            type(b).drain_timed is not None
            and b.timing is not None
            and b._timed_ok
            and b.timed_capable()
            for b in blocks
        ]
        changed = True
        while changed:
            changed = False
            for ch in channels:
                if ch.capacity is None:
                    continue
                p = producers.get(ch)
                c = consumers.get(ch)
                keep = (
                    p is not None
                    and c is not None
                    and timed[p]
                    and timed[c]
                    and blocks[p].timed_credit_producer
                    and blocks[c].timed_credit_consumer
                )
                if not keep:
                    if p is not None and timed[p]:
                        timed[p] = False
                        changed = True
                    if c is not None and timed[c]:
                        timed[c] = False
                        changed = True

        # -- timed channel state + prefilled queues ------------------------
        for ch in channels:
            p = producers.get(ch)
            c = consumers.get(ch)
            if not ((p is not None and timed[p]) or (c is not None and timed[c])):
                continue
            if p is not None and c is not None:
                delta = 0 if c > p else 1
                delta_pop = 0 if p > c else 1
            else:
                delta = delta_pop = 0
            state = ch.init_timed(delta, delta_pop)
            if ch.queue:
                try:
                    batch = ch.take_batch()
                except UnbatchableTokens:
                    if c is not None:
                        timed[c] = False
                    if p is not None:
                        timed[p] = False
                    ch.timed = None
                    continue
                if batch is not None and not batch.exhausted:
                    data, _, ccode = batch.remaining_arrays()
                    state.pending.append(
                        (
                            batch,
                            np.ones(len(data), dtype=np.int64),
                            np.ones(len(ccode), dtype=np.int64),
                        )
                    )

        # -- segment fusion ------------------------------------------------
        cache_hits, cache_misses = PLAN_CACHE.hits, PLAN_CACHE.misses
        units, stats, plans = self._compile_segments(blocks, timed)

        out_ch = [list(b.outputs.values()) for b in blocks]
        in_ch = [list(b.inputs.values()) for b in blocks]
        finished = [b.finished for b in blocks]
        active_from = [1] * n
        T = 1
        last_busy_T = 0

        dirty = deque(i for i in range(n) if timed[i])
        in_dirty = list(timed)

        def mark_dirty(i: int) -> None:
            if timed[i] and not finished[i] and not in_dirty[i]:
                in_dirty[i] = True
                dirty.append(i)

        def wake_after(i: int) -> None:
            for ch in out_ch[i]:
                if ch.timed is None:
                    continue
                c = consumers.get(ch)
                if c is not None:
                    mark_dirty(c)
            for ch in in_ch[i]:
                if ch.capacity is not None and ch.timed is not None:
                    p = producers.get(ch)
                    if p is not None:
                        mark_dirty(p)

        def dissolve(unit) -> None:
            """Mid-run fallback: members rejoin the plain timed plane."""
            if not unit.active:
                return
            unit.active = False
            stats["segments"] -= 1
            stats["fused_blocks"] -= len(unit.members)
            stats["fallbacks"] += 1
            stats["kinds"][unit.kind] -= 1
            for i in unit.members:
                units.pop(i, None)
                mark_dirty(i)

        def convert_to_scalar(i: int) -> None:
            unit = units.get(i)
            if unit is not None:
                dissolve(unit)
            timed[i] = False
            active_from[i] = blocks[i]._tclock

        def advance(i: int) -> None:
            unit = units.get(i)
            if unit is not None:
                outcome = unit.step()
                if outcome is _DISSOLVE:
                    dissolve(unit)
                    # a member that bailed the timed plane inside the
                    # unit must not be re-entered by the timed worklist
                    for m in unit.members:
                        if not blocks[m]._timed_ok:
                            convert_to_scalar(m)
                    return
                for m in unit.members:
                    if blocks[m].finished and not finished[m]:
                        finished[m] = True
                if outcome:
                    for m in unit.emitters:
                        wake_after(m)
                return
            block = blocks[i]
            progressed = block.drain_timed()
            if not block._timed_ok:
                convert_to_scalar(i)
                return
            if block.finished and not finished[i]:
                finished[i] = True
            if progressed:
                wake_after(i)

        def drain_worklist() -> None:
            while dirty:
                i = dirty.popleft()
                in_dirty[i] = False
                if finished[i] or not timed[i]:
                    continue
                advance(i)

        def sweep_outputs(i: int) -> None:
            for ch in out_ch[i]:
                state = ch.timed
                if state is None or not ch.queue:
                    continue
                c = consumers.get(ch)
                if c is None or not timed[c]:
                    continue
                try:
                    batch = ch.take_batch()
                except UnbatchableTokens:
                    unit = units.get(c)
                    if unit is not None:
                        dissolve(unit)
                    blocks[c]._bail_timed()
                    convert_to_scalar(c)
                    continue
                if batch is None or batch.exhausted:
                    continue
                v = T + state.delta
                data, _, ccode = batch.remaining_arrays()
                state.pending.append(
                    (
                        batch,
                        np.full(len(data), v, dtype=np.int64),
                        np.full(len(ccode), v, dtype=np.int64),
                    )
                )
                mark_dirty(c)

        budget_msg = f"exceeded max_cycles={max_cycles}"
        while True:
            drain_worklist()
            scalar_alive = [
                i for i in range(n) if not timed[i] and not finished[i]
            ]
            if not scalar_alive:
                if all(finished):
                    break
                stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
                raise self._deadlock(self._cycles_so_far(last_busy_T), stuck)
            progress = False
            for i in range(n):
                if timed[i] or finished[i] or T < active_from[i]:
                    continue
                drain_worklist()
                for ch in in_ch[i]:
                    if ch.timed is not None:
                        ch.materialize_timed(T)
                block = blocks[i]
                if block.step():
                    progress = True
                if block.finished:
                    finished[i] = True
                sweep_outputs(i)
            if progress:
                last_busy_T = T
                if max_cycles is not None and T > max_cycles:
                    raise RuntimeError(budget_msg)
                T += 1
                continue
            drain_worklist()
            if dirty:
                continue
            target = None
            for ch in channels:
                if ch.timed is None:
                    continue
                c = consumers.get(ch)
                if c is None or timed[c] or finished[c]:
                    continue
                stamp = ch.timed_pending_min_stamp()
                if stamp is not None and stamp > T:
                    target = stamp if target is None else min(target, stamp)
            for i in range(n):
                if not timed[i] and not finished[i] and active_from[i] > T:
                    target = (
                        active_from[i]
                        if target is None
                        else min(target, active_from[i])
                    )
            if target is None:
                if all(finished):
                    break
                stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
                raise self._deadlock(self._cycles_so_far(last_busy_T), stuck)
            for i in range(n):
                if not timed[i] and not finished[i] and T >= active_from[i]:
                    blocks[i].stall_cycles += target - T - 1
            T = target

        for ch in channels:
            if ch.timed is not None:
                ch.materialize_timed(None)
        cycles = self._cycles_so_far(last_busy_T)
        if max_cycles is not None and cycles > max_cycles:
            raise RuntimeError(budget_msg)
        LAST_FUSION_STATS.clear()
        LAST_FUSION_STATS.update(stats)
        LAST_FUSION_STATS["kinds"] = dict(stats["kinds"])
        jit_info = jit_stats()
        jit_info["plan_cache"]["run_hits"] = PLAN_CACHE.hits - cache_hits
        jit_info["plan_cache"]["run_misses"] = PLAN_CACHE.misses - cache_misses
        jit_info["plans"] = plans
        LAST_JIT_STATS.clear()
        LAST_JIT_STATS.update(jit_info)
        report = SimulationReport(cycles, self.blocks)
        report.fusion = dict(stats)
        report.fusion["kinds"] = dict(stats["kinds"])
        report.jit = jit_info
        return report

"""Shared machinery for simulation backends.

Every backend consumes the same graph — a list of :class:`~repro.blocks.base.Block`
instances wired by channels — and produces a :class:`SimulationReport`.
Backends differ only in *how* they schedule generator resumptions:

* :class:`~repro.sim.backends.cycle.CycleEngine` — the reference model;
  steps every unfinished block once per cycle.
* :class:`~repro.sim.backends.event.EventEngine` — event-driven; sleeps
  stalled blocks on their blocking channel and only resumes them after
  the channel sees a push (or a pop, for finite-capacity back-pressure),
  reproducing the reference cycle counts and busy/stall stats exactly.
* :class:`~repro.sim.backends.functional.FunctionalEngine` — drains each
  block to completion with no cycle accounting; outputs only.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ...blocks.base import Block


class DeadlockError(RuntimeError):
    """No block can make progress but the graph has not finished."""


class SimulationReport:
    """Result of a simulation run: cycles plus per-block activity."""

    def __init__(self, cycles: int, blocks: List[Block]):
        self.cycles = cycles
        self.blocks = blocks

    def block_activity(self) -> Dict[str, Dict[str, int]]:
        """Per-block busy/stall cycle counts."""
        return {
            block.name: {"busy": block.busy_cycles, "stall": block.stall_cycles}
            for block in self.blocks
        }

    def __repr__(self) -> str:
        return f"SimulationReport(cycles={self.cycles}, blocks={len(self.blocks)})"


class Engine:
    """Base class for simulation backends: validates the block list."""

    #: registry key; subclasses override ("cycle", "event", "functional")
    backend = "abstract"

    def __init__(self, blocks: Iterable[Block]):
        self.blocks: List[Block] = list(blocks)
        if not self.blocks:
            raise ValueError("engine needs at least one block")
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            seen, dups = set(), set()
            for name in names:
                (dups if name in seen else seen).add(name)
            raise ValueError(f"duplicate block names: {sorted(dups)}")

    def run(self, max_cycles: Optional[int] = None) -> SimulationReport:
        raise NotImplementedError

    def _deadlock(self, cycles: int, stuck: List[str]) -> DeadlockError:
        return DeadlockError(
            f"no progress after {cycles} cycles; stuck blocks: {stuck}"
        )

"""Functional backend: correctness-only runs at maximum speed.

Drains each block's generator to completion with no per-cycle
accounting: a block runs until it stalls, parks on the channel it is
blocked on, and is only revisited once that channel sees the push (or
pop) it is waiting for.  There is no cycle loop at all — each generator
is resumed O(tokens) times total instead of O(cycles).

The returned report carries ``cycles == 0`` (timing is not modelled) and
leaves per-block busy/stall counters untouched.  Use it to validate
outputs on large workloads before paying for a timed backend.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .base import Engine, SimulationReport


class FunctionalEngine(Engine):
    """Runs the graph to completion; outputs only, no timing."""

    backend = "functional"

    def run(self, max_cycles: Optional[int] = None) -> SimulationReport:
        blocks = self.blocks
        n = len(blocks)
        ready = deque(range(n))
        queued = [True] * n
        finished = [False] * n
        remaining = n
        # max_cycles has no cycle counter to bound here; treat it as a
        # resumption budget scaled by graph size so runaway graphs still
        # terminate with the same error surface.
        budget = None if max_cycles is None else max_cycles * n
        resumptions = 0
        # Consecutive drains with no True yield; bounds the pathological
        # case of blocks that stall without declaring a wait channel.
        idle_streak = 0

        def make_waker(i: int):
            def wake() -> None:
                if not finished[i] and not queued[i]:
                    queued[i] = True
                    ready.append(i)

            return wake

        wakers = [make_waker(i) for i in range(n)]

        while ready:
            i = ready.popleft()
            queued[i] = False
            block = blocks[i]
            limit = None if budget is None else budget - resumptions + 1
            progressed, steps = block.drain(limit=limit)
            resumptions += steps
            if budget is not None and resumptions > budget:
                raise RuntimeError(f"exceeded max_cycles={max_cycles}")
            if block.finished:
                finished[i] = True
                remaining -= 1
                idle_streak = 0
                continue
            if progressed:
                idle_streak = 0
            else:
                idle_streak += 1
                if idle_streak > 2 * n + 2:
                    stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
                    raise self._deadlock(0, stuck)
            wait = block._wait
            if wait is not None:
                channel, need = wait
                if need == "data":
                    channel.add_push_waiter(wakers[i])
                else:
                    channel.add_pop_waiter(wakers[i])
            else:
                # Spontaneous stall with no declared wait: retry round-robin.
                queued[i] = True
                ready.append(i)
        if remaining:
            stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
            raise self._deadlock(0, stuck)
        return SimulationReport(0, self.blocks)

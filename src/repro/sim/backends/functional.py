"""Functional backend: correctness-only runs at maximum speed.

Drains each block to completion with no per-cycle accounting: a block
runs until it stalls, parks on the channel it is blocked on, and is only
revisited once that channel sees the push (or pop) it is waiting for.
There is no cycle loop at all.

Two data planes are available per block:

* the **batched** plane (default): blocks that implement
  :meth:`~repro.blocks.base.Block.drain_batch` move whole numpy token
  runs (:class:`~repro.streams.batch.TokenBatch`) through their channels,
  processing entire data segments between control tokens at C speed;
* the **scalar** plane: the generator/per-token ``drain`` path, kept as
  the differential oracle (register key ``"functional-seq"``).

The planes mix freely within one graph: channels split batches for
scalar consumers and coalesce scalar tokens for batched ones, so blocks
without a batched implementation simply fall back.

Budget semantics (documented contract):

* ``max_resumptions`` — explicit bound on the total number of token
  operations (generator resumptions on the scalar plane, tokens
  processed on the batched plane).  Exceeding it raises ``RuntimeError``.
  The exact count for a given graph is reported as
  ``report.resumptions``, so callers can derive exact budgets.
* ``max_cycles`` — accepted for signature compatibility with the timed
  backends but **advisory only**: the functional backend models no
  cycles (``report.cycles == 0``), so a cycle budget neither rejects nor
  admits a run here.  Earlier revisions scaled it into a resumption
  budget (``max_cycles * n_blocks``), which could reject runs the
  cycle/event backends accept at the same budget and vice versa.

The returned report carries ``cycles == 0`` and leaves per-block
busy/stall counters untouched.  Use this backend to validate outputs on
large workloads before paying for a timed backend.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Iterable, Optional

from ...streams.batch import UnbatchableTokens
from .base import Engine, SimulationReport

#: environment switch: set to "0"/"off" to default new engines to the
#: scalar plane (the ``functional-seq`` registry key does the same)
BATCH_ENV_VAR = "REPRO_FUNCTIONAL_BATCH"


class FunctionalEngine(Engine):
    """Runs the graph to completion; outputs only, no timing."""

    backend = "functional"
    #: subclasses flip this to pin the scalar plane
    use_batch_default = True

    def __init__(self, blocks: Iterable, use_batch: Optional[bool] = None):
        super().__init__(blocks)
        if use_batch is None:
            env = os.environ.get(BATCH_ENV_VAR, "").strip().lower()
            use_batch = self.use_batch_default and env not in ("0", "off", "false")
        self.use_batch = bool(use_batch)

    def run(
        self,
        max_cycles: Optional[int] = None,
        max_resumptions: Optional[int] = None,
    ) -> SimulationReport:
        del max_cycles  # advisory: no cycles are modelled (see module docs)
        blocks = self.blocks
        n = len(blocks)
        ready = deque(range(n))
        queued = [True] * n
        finished = [False] * n
        remaining = n
        budget = max_resumptions
        resumptions = 0
        # Frozen at run start: batched blocks stay batched unless they
        # bail (self._batch_ok); scalar blocks never switch mid-stream.
        batched = [
            self.use_batch
            and type(block).drain_batch is not None
            and block._can_batch()
            for block in blocks
        ]
        # Consecutive drains with no True yield; bounds the pathological
        # case of blocks that stall without declaring a wait channel.
        idle_streak = 0

        def make_waker(i: int):
            def wake() -> None:
                if not finished[i] and not queued[i]:
                    queued[i] = True
                    ready.append(i)

            return wake

        wakers = [make_waker(i) for i in range(n)]

        while ready:
            i = ready.popleft()
            queued[i] = False
            block = blocks[i]
            if batched[i] and block._batch_ok:
                try:
                    progressed, steps = block.drain_batch()
                except UnbatchableTokens:
                    # A stream carries tokens the numpy plane cannot
                    # represent (tuple skip hints etc.): the offending
                    # queue is intact, so the block requeues its window
                    # and continues on the scalar plane.
                    progressed, steps = block._bail_batch()
            else:
                limit = None if budget is None else budget - resumptions + 1
                progressed, steps = block.drain(limit=limit)
            resumptions += steps
            if budget is not None and resumptions > budget:
                raise RuntimeError(
                    f"exceeded max_resumptions={max_resumptions} "
                    f"(functional backend token-operation budget)"
                )
            if block.finished:
                finished[i] = True
                remaining -= 1
                idle_streak = 0
                continue
            if progressed:
                idle_streak = 0
            else:
                idle_streak += 1
                if idle_streak > 2 * n + 2:
                    stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
                    raise self._deadlock(0, stuck)
            wait = block._wait
            if wait is not None:
                channel, need = wait
                if need == "data":
                    channel.add_push_waiter(wakers[i])
                else:
                    channel.add_pop_waiter(wakers[i])
            else:
                # Spontaneous stall with no declared wait: retry round-robin.
                queued[i] = True
                ready.append(i)
        if remaining:
            stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
            raise self._deadlock(0, stuck)
        report = SimulationReport(0, self.blocks)
        report.resumptions = resumptions
        return report


class SequentialFunctionalEngine(FunctionalEngine):
    """The scalar-plane functional backend: the differential oracle.

    Identical scheduling, but every block uses its generator/per-token
    ``drain`` path; batched drains are never invoked.  Registered as
    ``"functional-seq"`` so benchmarks and differential tests can pit the
    two planes against each other through any ``backend=`` parameter.
    """

    backend = "functional-seq"
    use_batch_default = False

"""Cycle-approximate reference backend (paper section 6 preamble).

The engine steps every block once per cycle until all blocks finish.
This realises the paper's simulator model: SAM graphs are fully
pipelined (every primitive produces one token each cycle), input queues
are infinite, memory reads take one cycle, memories are pre-initialised,
and primitives are not time-shared.

The reported metric is the cycle count — the number of engine iterations
in which at least one block made progress — which is what every figure
in the paper's evaluation plots.
"""

from __future__ import annotations

from typing import Optional

from .base import Engine, SimulationReport


class CycleEngine(Engine):
    """Steps a set of blocks cycle by cycle until completion."""

    backend = "cycle"

    def run(self, max_cycles: Optional[int] = None) -> SimulationReport:
        """Run to completion; returns the cycle count and activity stats."""
        cycles = 0
        # Only step unfinished blocks; rebuild the active list as blocks
        # retire so long tails do not pay for finished producers.
        active = list(self.blocks)
        while active:
            progress = False
            still_active = []
            for block in active:
                if block.step():
                    progress = True
                if not block.finished:
                    still_active.append(block)
            active = still_active
            if progress:
                # Raise before counting the over-budget cycle, so a run
                # that needs exactly max_cycles cycles still succeeds
                # (retire-only iterations make no progress and are free).
                if max_cycles is not None and cycles >= max_cycles:
                    raise RuntimeError(f"exceeded max_cycles={max_cycles}")
                cycles += 1
            elif active:
                raise self._deadlock(cycles, [b.name for b in active])
        return SimulationReport(cycles, self.blocks)

"""Epoch-batched timed backend: reference timing at TokenBatch speed.

:class:`TimedBatchEngine` reproduces the CycleEngine's *entire*
``SimulationReport`` — cycle count, per-block busy/stall statistics and
per-channel token counts — without resuming a generator once per token.
Blocks that declare a :class:`~repro.blocks.base.TimingDescriptor` and a
``drain_timed`` hook advance in **epochs**: one vectorized schedule
(`rate1_schedule`) per control-free token segment, with every produced
token carrying the cycle it was pushed.  The key facts making this exact:

* with the paper's unbounded queues, a block's busy/stall schedule is a
  deterministic function of its input tokens' *visible cycles* — the
  cycle each token becomes poppable, which is the producer's push cycle
  plus 0 or 1 depending on whether the consumer steps after the producer
  in the reference engine's block order;
* every stock primitive services one generator ``yield`` per cycle gated
  only by token arrivals, so an entire segment's schedule is the max-plus
  scan ``c[k] = max(c[k-1] + ii, arrival[k])``;
* finite-capacity FIFOs stay exact through the channel's credit log
  (:meth:`~repro.streams.channel.Channel.record_pops`): a batched
  producer's push *g* is additionally gated by the cycle slot ``g -
  capacity`` was freed.

Blocks without a descriptor (bitvector scanners, matrix reducers,
parallelizers, anything wired to a skip side channel, or any block that
bails mid-run exactly like the functional plane's ``_bail_batch``) fall
back **per block** to the scalar timed path: the engine steps their
generators one global cycle at a time, materialising stamped tokens into
their channels exactly when the reference engine would make them
visible, and crediting stall spans arithmetically when every live scalar
block is parked.  A graph whose blocks all carry descriptors never runs
the per-cycle loop at all.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from ...streams.batch import UnbatchableTokens
from .base import Engine, SimulationReport


class TimedBatchEngine(Engine):
    """Event-driven epoch advance over stamped token batches."""

    backend = "timed-batch"

    def run(self, max_cycles: Optional[int] = None) -> SimulationReport:
        blocks = self.blocks
        n = len(blocks)
        producers = {}
        consumers = {}
        for i, block in enumerate(blocks):
            for ch in block.outputs.values():
                producers[ch] = i
            for ch in block.inputs.values():
                consumers[ch] = i
        channels = list(dict.fromkeys(list(producers) + list(consumers)))

        # -- classification ------------------------------------------------
        timed = [
            type(b).drain_timed is not None
            and b.timing is not None
            and b._timed_ok
            and b.timed_capable()
            for b in blocks
        ]
        # Finite-capacity channels need credit-aware endpoints on the
        # batched plane (producer push schedules gated by recorded pop
        # cycles; see Block.timed_credit_producer/consumer — the stock
        # pairing is StreamFeeder -> Sink).  Everything else drops both
        # endpoints to the scalar timed path, where ``_put``/``pop``
        # back-pressure is exact by construction.
        changed = True
        while changed:
            changed = False
            for ch in channels:
                if ch.capacity is None:
                    continue
                p = producers.get(ch)
                c = consumers.get(ch)
                keep = (
                    p is not None
                    and c is not None
                    and timed[p]
                    and timed[c]
                    and blocks[p].timed_credit_producer
                    and blocks[c].timed_credit_consumer
                )
                if not keep:
                    if p is not None and timed[p]:
                        timed[p] = False
                        changed = True
                    if c is not None and timed[c]:
                        timed[c] = False
                        changed = True

        # -- timed channel state + prefilled queues ------------------------
        for ch in channels:
            p = producers.get(ch)
            c = consumers.get(ch)
            if not ((p is not None and timed[p]) or (c is not None and timed[c])):
                continue
            if p is not None and c is not None:
                delta = 0 if c > p else 1
                delta_pop = 0 if p > c else 1
            else:
                delta = delta_pop = 0
            state = ch.init_timed(delta, delta_pop)
            if ch.queue:
                # Tokens queued before the run are visible at cycle 1.
                try:
                    batch = ch.take_batch()
                except UnbatchableTokens:
                    if c is not None:
                        timed[c] = False
                    if p is not None:
                        timed[p] = False
                    ch.timed = None
                    continue
                if batch is not None and not batch.exhausted:
                    data, _, ccode = batch.remaining_arrays()
                    state.pending.append(
                        (
                            batch,
                            np.ones(len(data), dtype=np.int64),
                            np.ones(len(ccode), dtype=np.int64),
                        )
                    )

        out_ch = [list(b.outputs.values()) for b in blocks]
        in_ch = [list(b.inputs.values()) for b in blocks]
        finished = [b.finished for b in blocks]
        active_from = [1] * n
        T = 1
        last_busy_T = 0

        dirty = deque(i for i in range(n) if timed[i])
        in_dirty = list(timed)

        def mark_dirty(i: int) -> None:
            if timed[i] and not finished[i] and not in_dirty[i]:
                in_dirty[i] = True
                dirty.append(i)

        def wake_after(i: int) -> None:
            for ch in out_ch[i]:
                if ch.timed is None:
                    continue
                c = consumers.get(ch)
                if c is not None:
                    mark_dirty(c)
            for ch in in_ch[i]:
                if ch.capacity is not None and ch.timed is not None:
                    p = producers.get(ch)
                    if p is not None:
                        mark_dirty(p)

        def convert_to_scalar(i: int) -> None:
            """Per-block fallback: the generator takes over at _tclock."""
            timed[i] = False
            active_from[i] = blocks[i]._tclock

        def advance(i: int) -> None:
            block = blocks[i]
            progressed = block.drain_timed()
            if not block._timed_ok:
                convert_to_scalar(i)
                return
            if block.finished and not finished[i]:
                finished[i] = True
            if progressed:
                wake_after(i)

        def drain_worklist() -> None:
            while dirty:
                i = dirty.popleft()
                in_dirty[i] = False
                if finished[i] or not timed[i]:
                    continue
                advance(i)

        def sweep_outputs(i: int) -> None:
            """Move a scalar block's cycle-T pushes onto the stamped plane."""
            for ch in out_ch[i]:
                state = ch.timed
                if state is None or not ch.queue:
                    continue
                c = consumers.get(ch)
                if c is None or not timed[c]:
                    continue  # plane switched mid-run: queue is now direct
                try:
                    batch = ch.take_batch()
                except UnbatchableTokens:
                    # The consumer cannot batch these tokens: it leaves
                    # the timed plane; the queue stays intact behind the
                    # stamped backlog it still owes (materialised below).
                    blocks[c]._bail_timed()
                    convert_to_scalar(c)
                    continue
                if batch is None or batch.exhausted:
                    continue
                v = T + state.delta
                data, _, ccode = batch.remaining_arrays()
                state.pending.append(
                    (
                        batch,
                        np.full(len(data), v, dtype=np.int64),
                        np.full(len(ccode), v, dtype=np.int64),
                    )
                )
                mark_dirty(c)

        budget_msg = f"exceeded max_cycles={max_cycles}"
        while True:
            drain_worklist()
            scalar_alive = [
                i for i in range(n) if not timed[i] and not finished[i]
            ]
            if not scalar_alive:
                if all(finished):
                    break
                stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
                raise self._deadlock(self._cycles_so_far(last_busy_T), stuck)
            # One reference cycle for the scalar blocks at global time T.
            progress = False
            for i in range(n):
                if timed[i] or finished[i] or T < active_from[i]:
                    continue
                drain_worklist()
                for ch in in_ch[i]:
                    if ch.timed is not None:
                        ch.materialize_timed(T)
                block = blocks[i]
                if block.step():
                    progress = True
                if block.finished:
                    finished[i] = True
                sweep_outputs(i)
            if progress:
                last_busy_T = T
                if max_cycles is not None and T > max_cycles:
                    raise RuntimeError(budget_msg)
                T += 1
                continue
            drain_worklist()
            if dirty:
                continue
            # Nothing moved at cycle T: jump to the next future event,
            # crediting the skipped stall cycles to every live stepped
            # block (the reference engine steps them to a stalled yield
            # each of those cycles).
            target = None
            for ch in channels:
                if ch.timed is None:
                    continue
                c = consumers.get(ch)
                if c is None or timed[c] or finished[c]:
                    continue
                stamp = ch.timed_pending_min_stamp()
                if stamp is not None and stamp > T:
                    target = stamp if target is None else min(target, stamp)
            for i in range(n):
                if not timed[i] and not finished[i] and active_from[i] > T:
                    target = (
                        active_from[i]
                        if target is None
                        else min(target, active_from[i])
                    )
            if target is None:
                if all(finished):
                    break
                stuck = [b.name for k, b in enumerate(blocks) if not finished[k]]
                raise self._deadlock(self._cycles_so_far(last_busy_T), stuck)
            # The stalled step at cycle T already charged its own stall;
            # the credit covers the skipped cycles T+1 .. target-1.
            for i in range(n):
                if not timed[i] and not finished[i] and T >= active_from[i]:
                    blocks[i].stall_cycles += target - T - 1
            T = target

        for ch in channels:
            if ch.timed is not None:
                ch.materialize_timed(None)
        cycles = self._cycles_so_far(last_busy_T)
        if max_cycles is not None and cycles > max_cycles:
            raise RuntimeError(budget_msg)
        return SimulationReport(cycles, self.blocks)

    def _cycles_so_far(self, last_busy_T: int) -> int:
        """Reference cycle count: the latest busy cycle on either plane."""
        cycles = last_busy_T
        for block in self.blocks:
            timing = block.timing
            if timing is not None and block._tclock > 1:
                cycles = max(cycles, block._tclock - timing.ii)
        return cycles

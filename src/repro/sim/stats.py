"""Stream and block statistics (paper section 6.4, Figure 14).

The stream-analysis study classifies every token on a stream into
non-control, stop, done — plus *idle* cycles, the cycles a stream's
producer spent finished-or-stalled while the rest of the graph worked
(the dominant category for outer-level scanners in Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..streams.channel import Channel


@dataclass
class TokenBreakdown:
    """Token composition of one stream over a whole run."""

    data: int
    stop: int
    done: int
    empty: int
    idle: int = 0

    @property
    def total(self) -> int:
        return self.data + self.stop + self.done + self.empty + self.idle

    def fractions(self) -> Dict[str, float]:
        """Fractions of each category (idle included), as Figure 14 plots."""
        total = self.total
        if total == 0:
            return {"data": 0.0, "stop": 0.0, "done": 0.0, "empty": 0.0, "idle": 0.0}
        return {
            "data": self.data / total,
            "stop": self.stop / total,
            "done": self.done / total,
            "empty": self.empty / total,
            "idle": self.idle / total,
        }

    def control_overhead(self) -> float:
        """Non-idle control fraction: (stop + done + empty) / non-idle tokens."""
        busy = self.data + self.stop + self.done + self.empty
        if busy == 0:
            return 0.0
        return (self.stop + self.done + self.empty) / busy

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON experiment records (harness cache)."""
        return {"data": self.data, "stop": self.stop, "done": self.done,
                "empty": self.empty, "idle": self.idle}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "TokenBreakdown":
        return cls(data=data["data"], stop=data["stop"], done=data["done"],
                   empty=data["empty"], idle=data.get("idle", 0))


def graph_token_counts(blocks) -> Dict[str, Dict[str, int]]:
    """Per-channel token counts for every channel wired to *blocks*.

    Keys are ``"producer.port"`` (falling back to the channel name for
    externally-fed channels).  This is the whole-graph token breakdown
    the backend-equivalence suite asserts bit-identical across the
    cycle, event and timed-batch engines: every engine must push every
    logical token exactly once, whatever plane it moves on.
    """
    seen = {}
    for block in blocks:
        for port, channel in block.outputs.items():
            seen[id(channel)] = (f"{block.name}.{port}", channel)
    for block in blocks:
        for channel in block.inputs.values():
            if id(channel) not in seen:
                seen[id(channel)] = (channel.name, channel)
    return {name: channel.token_counts() for name, channel in seen.values()}


def channel_breakdown(channel: Channel, total_cycles: int = 0) -> TokenBreakdown:
    """Token breakdown for a channel; idle = cycles with no token pushed."""
    counts = channel.token_counts()
    pushed = sum(counts.values())
    idle = max(0, total_cycles - pushed)
    return TokenBreakdown(
        data=counts["data"],
        stop=counts["stop"],
        done=counts["done"],
        empty=counts["empty"],
        idle=idle,
    )

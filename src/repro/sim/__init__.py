"""Cycle-approximate SAM simulator with pluggable execution backends.

Backend API
===========

A *backend* is an :class:`~repro.sim.backends.base.Engine` subclass: it
takes the graph's block list, validates it (non-empty, unique names),
and implements ``run(max_cycles=None) -> SimulationReport``.  Three
backends ship in :mod:`repro.sim.backends`:

``cycle`` (:class:`CycleEngine`)
    The reference model — every unfinished block is stepped once per
    simulated cycle.  Cycle counts are the paper's reported metric.

``event`` (:class:`EventEngine`)
    Event-driven scheduling: blocks stalled on a channel sleep until
    that channel receives a push (or, for finite-capacity FIFOs, a
    pop), with the skipped stall cycles credited arithmetically.
    Produces *bit-identical* cycle counts and per-block busy/stall
    statistics to ``cycle`` at a fraction of the wall-clock cost.

``timed-batch`` (:class:`TimedBatchEngine`)
    Epoch-batched timing on the TokenBatch data plane: blocks with
    timing descriptors advance over whole control-free token segments
    analytically (one vectorized schedule per segment) while the rest
    fall back per block to the scalar timed path.  Bit-identical
    reports (cycles, busy/stall, token counts) to ``cycle``; the
    fastest timed backend on large workloads.

``functional`` (:class:`FunctionalEngine`)
    Drains every block to completion with no cycle accounting; the
    report carries ``cycles == 0``.  For fast correctness-only runs.

Selecting a backend
-------------------

Every entry point that runs a graph — :func:`run_blocks`,
``GraphBuilder.run``, ``BoundGraph.run``, ``CompiledProgram.run``, the
kernels, and the study drivers — accepts ``backend=`` (a registry name
or an Engine class).  ``backend=None`` defers to the ``REPRO_ENGINE``
environment variable and finally to ``"cycle"``.  The CLI exposes the
same choice as ``repro --engine {cycle,event,functional} <command>``.

Adding a backend
----------------

Subclass :class:`~repro.sim.backends.base.Engine`, set a unique
``backend`` class attribute, implement ``run``, and register the class
in :data:`repro.sim.backends.BACKENDS`.  Blocks expose everything a
scheduler needs: ``step()`` (one cycle), ``drain()`` (run-to-stall),
``finished``, and ``waiting_on`` — the ``(channel, "data"|"space")``
reason for the last stall.  Channels accept one-shot wake callbacks via
``add_push_waiter``/``add_pop_waiter``.
"""

from .backends import (
    BACKENDS,
    CycleEngine,
    DeadlockError,
    Engine,
    EventEngine,
    FunctionalEngine,
    SimulationReport,
    TimedBatchEngine,
    get_backend,
    make_engine,
    resolve_backend,
    run_blocks,
)
from .stats import TokenBreakdown, channel_breakdown, graph_token_counts

__all__ = [
    "BACKENDS",
    "CycleEngine",
    "DeadlockError",
    "Engine",
    "EventEngine",
    "FunctionalEngine",
    "SimulationReport",
    "TimedBatchEngine",
    "TokenBreakdown",
    "channel_breakdown",
    "graph_token_counts",
    "get_backend",
    "make_engine",
    "resolve_backend",
    "run_blocks",
]

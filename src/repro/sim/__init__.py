"""Cycle-approximate SAM simulator."""

from .engine import CycleEngine, DeadlockError, SimulationReport, run_blocks
from .stats import TokenBreakdown, channel_breakdown

__all__ = [
    "CycleEngine",
    "DeadlockError",
    "SimulationReport",
    "TokenBreakdown",
    "channel_breakdown",
    "run_blocks",
]

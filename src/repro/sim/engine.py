"""Cycle-approximate dataflow engine (paper section 6 preamble).

The engine steps every block once per cycle until all blocks finish.
This realises the paper's simulator model: SAM graphs are fully
pipelined (every primitive produces one token each cycle), input queues
are infinite, memory reads take one cycle, memories are pre-initialised,
and primitives are not time-shared.

The reported metric is the cycle count — the number of engine iterations
in which at least one block made progress — which is what every figure
in the paper's evaluation plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..blocks.base import Block


class DeadlockError(RuntimeError):
    """No block can make progress but the graph has not finished."""


class SimulationReport:
    """Result of a simulation run: cycles plus per-block activity."""

    def __init__(self, cycles: int, blocks: List[Block]):
        self.cycles = cycles
        self.blocks = blocks

    def block_activity(self) -> Dict[str, Dict[str, int]]:
        """Per-block busy/stall cycle counts."""
        return {
            block.name: {"busy": block.busy_cycles, "stall": block.stall_cycles}
            for block in self.blocks
        }

    def __repr__(self) -> str:
        return f"SimulationReport(cycles={self.cycles}, blocks={len(self.blocks)})"


class CycleEngine:
    """Steps a set of blocks cycle by cycle until completion."""

    def __init__(self, blocks: Iterable[Block]):
        self.blocks: List[Block] = list(blocks)
        if not self.blocks:
            raise ValueError("engine needs at least one block")
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            seen, dups = set(), set()
            for name in names:
                (dups if name in seen else seen).add(name)
            raise ValueError(f"duplicate block names: {sorted(dups)}")

    def run(self, max_cycles: Optional[int] = None) -> SimulationReport:
        """Run to completion; returns the cycle count and activity stats."""
        cycles = 0
        # Only step unfinished blocks; rebuild the active list as blocks
        # retire so long tails do not pay for finished producers.
        active = list(self.blocks)
        while active:
            progress = False
            still_active = []
            for block in active:
                if block.step():
                    progress = True
                if not block.finished:
                    still_active.append(block)
            active = still_active
            if progress:
                cycles += 1
            elif active:
                stuck = [b.name for b in active]
                raise DeadlockError(
                    f"no progress after {cycles} cycles; stuck blocks: {stuck}"
                )
            if max_cycles is not None and cycles > max_cycles:
                raise RuntimeError(f"exceeded max_cycles={max_cycles}")
        return SimulationReport(cycles, self.blocks)


def run_blocks(blocks: Iterable[Block], max_cycles: Optional[int] = None) -> SimulationReport:
    """Convenience wrapper: build an engine and run it."""
    return CycleEngine(blocks).run(max_cycles=max_cycles)

"""Compatibility shim for the pre-backend engine module.

The engine implementations live in :mod:`repro.sim.backends`; this
module keeps the historical import surface (``from repro.sim.engine
import CycleEngine, run_blocks, ...``) working and is the conventional
home of :func:`run_blocks`.
"""

from __future__ import annotations

from .backends import (
    BACKENDS,
    CycleEngine,
    DeadlockError,
    Engine,
    EventEngine,
    FunctionalEngine,
    SequentialFunctionalEngine,
    SimulationReport,
    get_backend,
    make_engine,
    resolve_backend,
    run_blocks,
)

__all__ = [
    "BACKENDS",
    "CycleEngine",
    "DeadlockError",
    "Engine",
    "EventEngine",
    "FunctionalEngine",
    "SequentialFunctionalEngine",
    "SimulationReport",
    "get_backend",
    "make_engine",
    "resolve_backend",
    "run_blocks",
]

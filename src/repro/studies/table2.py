"""Table 2 reproduction: algorithms lost when a SAM primitive is removed.

The paper analyses 23,794 TACO-website algorithms (3,839 distinct).  We
run the same ablation over the synthetic corpus described in
EXPERIMENTS.md: compile every distinct algorithm, then for each removal
scenario count how many algorithms become inexpressible, both over
distinct algorithms ("Unique") and weighted by usage ("All").

The corpus compile pass is the slow path; under the sweep harness each
removal scenario is one sweep point and every worker process compiles
the corpus once (:func:`repro.data.corpus.compiled_corpus` memoizes it),
so ``repro sweep table2 --jobs N`` splits the twelve scenarios N ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..data.corpus import Corpus, compile_corpus_programs, compiled_corpus
from ..harness.registry import Study
from ..harness.spec import ExperimentResult, ExperimentSpec
from ..lang import TABLE2_SCENARIOS, lost_without

#: the paper's published percentages (unique %, all %) per scenario
PAPER_PERCENTAGES: Dict[str, Tuple[float, float]] = {
    "comp_level_scanner": (72.23, 81.38),
    "comp_and_uncomp_level_scanners": (99.35, 99.66),
    "repeater": (82.37, 83.74),
    "unioner": (15.63, 9.37),
    "intersecter_keep_locator": (18.75, 11.41),
    "intersecter_with_locator_removed": (48.92, 66.31),
    "adder": (26.65, 13.1),
    "multiplier": (83.88, 88.2),
    "reducer": (78.35, 84.21),
    "coordinate_dropper": (16.07, 9.63),
    "comp_level_writer": (28.0, 23.22),
    "comp_and_uncomp_level_writers": (96.33, 97.76),
}


@dataclass
class Table2Row:
    scenario: str
    lost_unique: int
    lost_all: int
    pct_unique: float
    pct_all: float
    paper_pct_unique: float
    paper_pct_all: float


def _ablate(programs: Sequence, counts: Sequence[int], scenario: str) -> Tuple[int, int]:
    """Count algorithms lost (distinct, usage-weighted) for one scenario."""
    lost_unique = 0
    lost_all = 0
    for program, count in zip(programs, counts):
        if lost_without(program, scenario):
            lost_unique += 1
            lost_all += count
    return lost_unique, lost_all


def _row(scenario: str, lost_unique: int, lost_all: int,
         distinct: int, total: int) -> Table2Row:
    paper = PAPER_PERCENTAGES[scenario]
    return Table2Row(
        scenario,
        lost_unique,
        lost_all,
        100.0 * lost_unique / distinct,
        100.0 * lost_all / total,
        paper[0],
        paper[1],
    )


def enumerate_specs(
    distinct: int = 400, total: int = 23794, seed: int = 0, backend: str = "-",
) -> List[ExperimentSpec]:
    """One spec per removal scenario (compile-only: backend ignored).

    ``distinct`` scales the corpus (the paper's full 3,839 works too but
    takes a few minutes; the percentages are stable beyond a few hundred
    entries because they are ratios).
    """
    return [
        ExperimentSpec(
            "table2",
            {"scenario": scenario, "distinct": distinct, "total": total,
             "seed": seed},
        )
        for scenario in TABLE2_SCENARIOS
    ]


def execute(spec: ExperimentSpec) -> Dict[str, Any]:
    p = spec.point
    corpus, programs = compiled_corpus(
        total=p["total"], distinct_target=p["distinct"], seed=p["seed"]
    )
    lost_unique, lost_all = _ablate(programs, corpus.counts, p["scenario"])
    return {
        "lost_unique": lost_unique,
        "lost_all": lost_all,
        "corpus_distinct": corpus.distinct,
        "corpus_total": corpus.total,
    }


def rows_from_results(results: Sequence[ExperimentResult]) -> List[Table2Row]:
    return [
        _row(r.spec.point["scenario"], r.payload["lost_unique"],
             r.payload["lost_all"], r.payload["corpus_distinct"],
             r.payload["corpus_total"])
        for r in results
    ]


def run_table2(corpus: Corpus = None, seed: int = 0, distinct: int = 400,
               total: int = 23794) -> List[Table2Row]:
    """Run the ablation; the corpus is regenerated unless supplied."""
    if corpus is not None:
        # A caller-supplied corpus is not expressible as a JSON spec;
        # compile and ablate it directly.
        programs = compile_corpus_programs(corpus)
        return [
            _row(scenario, *_ablate(programs, corpus.counts, scenario),
                 corpus.distinct, corpus.total)
            for scenario in TABLE2_SCENARIOS
        ]
    from ..harness.runner import SweepRunner

    specs = enumerate_specs(distinct=distinct, total=total, seed=seed)
    return rows_from_results(SweepRunner().run(specs).results)


def format_table2(rows: List[Table2Row]) -> str:
    header = (
        f"{'SAM Primitive Removed':<36}{'Unique':>8}{'All':>8}"
        f"{'Uniq%':>8}{'All%':>8}{'paper U%':>10}{'paper A%':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scenario:<36}{row.lost_unique:>8}{row.lost_all:>8}"
            f"{row.pct_unique:>8.2f}{row.pct_all:>8.2f}"
            f"{row.paper_pct_unique:>10.2f}{row.paper_pct_all:>10.2f}"
        )
    return "\n".join(lines)


def render(results: Sequence[ExperimentResult]) -> str:
    return format_table2(rows_from_results(results))


STUDY = Study(
    name="table2",
    title="primitive-removal ablation (Table 2)",
    enumerate_fn=enumerate_specs,
    execute_fn=execute,
    render_fn=render,
    uses_backend=False,
    quick_options={"distinct": 40, "total": 500},
)


def main() -> str:
    text = format_table2(run_table2())
    print(text)
    return text


if __name__ == "__main__":
    main()

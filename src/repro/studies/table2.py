"""Table 2 reproduction: algorithms lost when a SAM primitive is removed.

The paper analyses 23,794 TACO-website algorithms (3,839 distinct).  We
run the same ablation over the synthetic corpus described in DESIGN.md:
compile every distinct algorithm, then for each removal scenario count
how many algorithms become inexpressible, both over distinct algorithms
("Unique") and weighted by usage ("All").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..data.corpus import Corpus, generate_corpus
from ..lang import TABLE2_SCENARIOS, compile_expression, lost_without

#: the paper's published percentages (unique %, all %) per scenario
PAPER_PERCENTAGES: Dict[str, Tuple[float, float]] = {
    "comp_level_scanner": (72.23, 81.38),
    "comp_and_uncomp_level_scanners": (99.35, 99.66),
    "repeater": (82.37, 83.74),
    "unioner": (15.63, 9.37),
    "intersecter_keep_locator": (18.75, 11.41),
    "intersecter_with_locator_removed": (48.92, 66.31),
    "adder": (26.65, 13.1),
    "multiplier": (83.88, 88.2),
    "reducer": (78.35, 84.21),
    "coordinate_dropper": (16.07, 9.63),
    "comp_level_writer": (28.0, 23.22),
    "comp_and_uncomp_level_writers": (96.33, 97.76),
}


@dataclass
class Table2Row:
    scenario: str
    lost_unique: int
    lost_all: int
    pct_unique: float
    pct_all: float
    paper_pct_unique: float
    paper_pct_all: float


def run_table2(corpus: Corpus = None, seed: int = 0, distinct: int = 400,
               total: int = 23794) -> List[Table2Row]:
    """Run the ablation; the corpus is regenerated unless supplied.

    ``distinct`` scales the corpus (the paper's full 3,839 works too but
    takes a few minutes; the percentages are stable beyond a few hundred
    entries because they are ratios).
    """
    if corpus is None:
        corpus = generate_corpus(total=total, distinct_target=distinct, seed=seed)
    programs = []
    for entry in corpus.entries:
        program = compile_expression(
            entry.expression, formats=entry.format_dict(), schedule=entry.schedule
        )
        # Attach the user-declared output format for the writer scenarios.
        program.output_format = entry.output_format
        programs.append(program)
    rows = []
    for scenario in TABLE2_SCENARIOS:
        lost_unique = 0
        lost_all = 0
        for program, count in zip(programs, corpus.counts):
            if lost_without(program, scenario):
                lost_unique += 1
                lost_all += count
        paper = PAPER_PERCENTAGES[scenario]
        rows.append(
            Table2Row(
                scenario,
                lost_unique,
                lost_all,
                100.0 * lost_unique / corpus.distinct,
                100.0 * lost_all / corpus.total,
                paper[0],
                paper[1],
            )
        )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    header = (
        f"{'SAM Primitive Removed':<36}{'Unique':>8}{'All':>8}"
        f"{'Uniq%':>8}{'All%':>8}{'paper U%':>10}{'paper A%':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.scenario:<36}{row.lost_unique:>8}{row.lost_all:>8}"
            f"{row.pct_unique:>8.2f}{row.pct_all:>8.2f}"
            f"{row.paper_pct_unique:>10.2f}{row.paper_pct_all:>10.2f}"
        )
    return "\n".join(lines)


def main() -> str:
    text = format_table2(run_table2())
    print(text)
    return text


if __name__ == "__main__":
    main()

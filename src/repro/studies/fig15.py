"""Figure 15 reproduction: the ExTensor synthetic-data study.

"SpM*SpM performance across varying dimension sizes with a constant
number of nonzeros per matrix", modelled with the finite-memory SAM
configuration of section 6.4: two-level hierarchy (17 MB LLB, 128x128 PE
tiles), 68.256 GB/s DRAM, hierarchical coordinate skipping, sparse tile
skipping, and n-buffering.

The three regions to reproduce: rising runtime at small dimensions (more
non-empty tiles), then falling runtime as sparse tile skipping kicks in,
then saturation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..data.synthetic import extensor_matrix
from ..harness.registry import Study
from ..harness.spec import ExperimentResult, ExperimentSpec, as_tuple
from ..memory.extensor import ExTensorConfig, ExTensorResult, extensor_spmm_cycles

#: the paper's sweep: dimensions range(1024, 15721, 1336), nnz in
#: {5000, 10000, 25000, 50000}
PAPER_DIMENSIONS: Tuple[int, ...] = tuple(range(1024, 15721, 1336))
PAPER_NNZS: Tuple[int, ...] = (5000, 10000, 25000, 50000)

#: reduced sweep still covering all three regions (CLI ``--quick``)
QUICK_DIMENSIONS: Tuple[int, ...] = (1024, 3696, 7704, 11712, 15720)
QUICK_NNZS: Tuple[int, ...] = (5000, 10000)


@dataclass
class Fig15Point:
    dimension: int
    nnz: int
    cycles: float
    result: ExTensorResult


def enumerate_specs(
    dimensions: Sequence[int] = PAPER_DIMENSIONS,
    nnzs: Sequence[int] = PAPER_NNZS,
    seed: int = 0,
) -> List[ExperimentSpec]:
    """One spec per (dimension, nnz) point; the model is analytic, so
    no simulation backend enters the cache key."""
    return [
        ExperimentSpec("fig15", {"dimension": dim, "nnz": nnz, "seed": seed})
        for nnz in as_tuple(nnzs)
        for dim in as_tuple(dimensions)
    ]


def execute(spec: ExperimentSpec) -> Dict[str, Any]:
    p = spec.point
    B = extensor_matrix(p["dimension"], p["nnz"], seed=p["seed"])
    C = extensor_matrix(p["dimension"], p["nnz"], seed=p["seed"] + 1)
    result = extensor_spmm_cycles(B, C, None)
    return asdict(result)


def points_from_results(results: Sequence[ExperimentResult]) -> List[Fig15Point]:
    return [
        Fig15Point(r.spec.point["dimension"], r.spec.point["nnz"],
                   r.payload["cycles"], ExTensorResult(**r.payload))
        for r in results
    ]


def run_fig15(
    dimensions: Tuple[int, ...] = PAPER_DIMENSIONS,
    nnzs: Tuple[int, ...] = PAPER_NNZS,
    seed: int = 0,
    config: ExTensorConfig = None,
) -> List[Fig15Point]:
    """The dimension/nnz sweep.  A custom ``config`` (not expressible as
    a JSON spec) bypasses the harness and runs the model directly."""
    if config is not None:
        points = []
        for nnz in nnzs:
            for dim in dimensions:
                B = extensor_matrix(dim, nnz, seed=seed)
                C = extensor_matrix(dim, nnz, seed=seed + 1)
                result = extensor_spmm_cycles(B, C, config)
                points.append(Fig15Point(dim, nnz, result.cycles, result))
        return points
    from ..harness.runner import SweepRunner

    specs = enumerate_specs(dimensions=dimensions, nnzs=nnzs, seed=seed)
    return points_from_results(SweepRunner().run(specs).results)


def regions(points: List[Fig15Point], nnz: int) -> Tuple[bool, bool]:
    """Check the rise-then-fall shape for one nnz series."""
    series = sorted(
        [p for p in points if p.nnz == nnz], key=lambda p: p.dimension
    )
    cycles = [p.cycles for p in series]
    if len(cycles) < 3:
        return False, False
    peak = cycles.index(max(cycles))
    rises = peak > 0 or cycles[0] < max(cycles)
    falls = cycles[-1] < max(cycles)
    return rises, falls


def format_fig15(points: List[Fig15Point]) -> str:
    dims = sorted({p.dimension for p in points})
    nnzs = sorted({p.nnz for p in points})
    lines = [f"{'dim':>7}" + "".join(f"{f'{n} nnz':>16}" for n in nnzs)]
    lines.append("-" * len(lines[0]))
    for dim in dims:
        row = f"{dim:>7}"
        for nnz in nnzs:
            cycles = next(
                p.cycles for p in points if p.dimension == dim and p.nnz == nnz
            )
            row += f"{cycles:>16.0f}"
        lines.append(row)
    return "\n".join(lines)


def render(results: Sequence[ExperimentResult]) -> str:
    return format_fig15(points_from_results(results))


STUDY = Study(
    name="fig15",
    title="ExTensor recreation (Figure 15)",
    enumerate_fn=enumerate_specs,
    execute_fn=execute,
    render_fn=render,
    uses_backend=False,
    quick_options={"dimensions": QUICK_DIMENSIONS, "nnzs": QUICK_NNZS},
)


def main() -> str:
    text = format_fig15(run_fig15())
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 15 reproduction: the ExTensor synthetic-data study.

"SpM*SpM performance across varying dimension sizes with a constant
number of nonzeros per matrix", modelled with the finite-memory SAM
configuration of section 6.4: two-level hierarchy (17 MB LLB, 128x128 PE
tiles), 68.256 GB/s DRAM, hierarchical coordinate skipping, sparse tile
skipping, and n-buffering.

The three regions to reproduce: rising runtime at small dimensions (more
non-empty tiles), then falling runtime as sparse tile skipping kicks in,
then saturation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..data.synthetic import extensor_matrix
from ..memory.extensor import ExTensorConfig, ExTensorResult, extensor_spmm_cycles

#: the paper's sweep: dimensions range(1024, 15721, 1336), nnz in
#: {5000, 10000, 25000, 50000}
PAPER_DIMENSIONS: Tuple[int, ...] = tuple(range(1024, 15721, 1336))
PAPER_NNZS: Tuple[int, ...] = (5000, 10000, 25000, 50000)


@dataclass
class Fig15Point:
    dimension: int
    nnz: int
    cycles: float
    result: ExTensorResult


def run_fig15(
    dimensions: Tuple[int, ...] = PAPER_DIMENSIONS,
    nnzs: Tuple[int, ...] = PAPER_NNZS,
    seed: int = 0,
    config: ExTensorConfig = None,
) -> List[Fig15Point]:
    points = []
    for nnz in nnzs:
        for dim in dimensions:
            B = extensor_matrix(dim, nnz, seed=seed)
            C = extensor_matrix(dim, nnz, seed=seed + 1)
            result = extensor_spmm_cycles(B, C, config)
            points.append(Fig15Point(dim, nnz, result.cycles, result))
    return points


def regions(points: List[Fig15Point], nnz: int) -> Tuple[bool, bool]:
    """Check the rise-then-fall shape for one nnz series."""
    series = sorted(
        [p for p in points if p.nnz == nnz], key=lambda p: p.dimension
    )
    cycles = [p.cycles for p in series]
    if len(cycles) < 3:
        return False, False
    peak = cycles.index(max(cycles))
    rises = peak > 0 or cycles[0] < max(cycles)
    falls = cycles[-1] < max(cycles)
    return rises, falls


def format_fig15(points: List[Fig15Point]) -> str:
    dims = sorted({p.dimension for p in points})
    nnzs = sorted({p.nnz for p in points})
    lines = [f"{'dim':>7}" + "".join(f"{f'{n} nnz':>16}" for n in nnzs)]
    lines.append("-" * len(lines[0]))
    for dim in dims:
        row = f"{dim:>7}"
        for nnz in nnzs:
            cycles = next(
                p.cycles for p in points if p.dimension == dim and p.nnz == nnz
            )
            row += f"{cycles:>16.0f}"
        lines.append(row)
    return "\n".join(lines)


def main() -> str:
    text = format_fig15(run_fig15())
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 11 reproduction: fused vs. unfused SDDMM performance.

The paper sweeps the dense contraction depth K over {1, 10, 100} with a
95%-sparse uniform B and dense C, D of dimension I = J = 250, and plots
cycles for the unfused (factorized), fused-coiterating, and fused-
locating implementations.  The claims under test:

* unfused is far worse (it computes the whole dense GEMM);
* fused locating beats fused coiteration at small K, with the gap
  closing as the dense K loop starts to dominate.

Dimensions scale down by default so the cycle-level simulation finishes
in seconds; the shape is size-stable (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.synthetic import random_sparse_matrix
from ..harness.registry import Study
from ..harness.spec import ExperimentResult, ExperimentSpec, as_tuple
from ..kernels.sddmm import (
    sddmm_fused_coiter,
    sddmm_fused_locate,
    sddmm_reference,
    sddmm_unfused,
)

VARIANTS = ("unfused", "fused_locate", "fused_coiter")

_IMPLS = {
    "unfused": sddmm_unfused,
    "fused_locate": sddmm_fused_locate,
    "fused_coiter": sddmm_fused_coiter,
}


@dataclass
class Fig11Point:
    k: int
    variant: str
    cycles: int
    correct: bool


def enumerate_specs(
    size: int = 40,
    k_sweep: Sequence[int] = (1, 10, 100),
    sparsity: float = 0.95,
    seed: int = 0,
    backend: str = "cycle",
) -> List[ExperimentSpec]:
    """One spec per (K, variant) point of the Figure 11 sweep."""
    return [
        ExperimentSpec(
            "fig11",
            {"size": size, "k": k, "variant": variant,
             "sparsity": sparsity, "seed": seed},
            backend=backend,
        )
        for k in as_tuple(k_sweep)
        for variant in VARIANTS
    ]


def execute(spec: ExperimentSpec) -> Dict[str, Any]:
    """Run one SDDMM variant at one K; seeded, so replayable anywhere."""
    p = spec.point
    size, k, seed = p["size"], p["k"], p["seed"]
    rng = np.random.default_rng(seed)
    B = random_sparse_matrix(size, size, 1.0 - p["sparsity"], seed=seed)
    # Dense inputs come from a fresh per-point RNG so a point's matrices
    # depend only on (seed, size, k) — never on sweep order or sharding.
    C = rng.uniform(0.1, 1.0, size=(size, k))
    D = rng.uniform(0.1, 1.0, size=(size, k))
    reference = sddmm_reference(B, C, D)
    result = _IMPLS[p["variant"]](B, C, D, backend=spec.backend)
    return {
        "cycles": int(result.cycles),
        "correct": bool(np.allclose(result.output, reference)),
    }


def points_from_results(results: Sequence[ExperimentResult]) -> List[Fig11Point]:
    return [
        Fig11Point(r.spec.point["k"], r.spec.point["variant"],
                   r.payload["cycles"], r.payload["correct"])
        for r in results
    ]


def run_fig11(
    size: int = 40,
    k_sweep: Tuple[int, ...] = (1, 10, 100),
    sparsity: float = 0.95,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig11Point]:
    """Sweep K for the three SDDMM implementations (serial, uncached)."""
    from ..harness.runner import SweepRunner
    from ..sim.backends import resolve_backend

    specs = enumerate_specs(size=size, k_sweep=k_sweep, sparsity=sparsity,
                            seed=seed, backend=resolve_backend(backend))
    return points_from_results(SweepRunner().run(specs).results)


def format_fig11(points: List[Fig11Point]) -> str:
    ks = sorted({p.k for p in points})
    lines = [f"{'K':>6}" + "".join(f"{v:>16}" for v in VARIANTS)]
    lines.append("-" * len(lines[0]))
    for k in ks:
        row = f"{k:>6}"
        for variant in VARIANTS:
            cycles = next(p.cycles for p in points if p.k == k and p.variant == variant)
            row += f"{cycles:>16}"
        lines.append(row)
    return "\n".join(lines)


def render(results: Sequence[ExperimentResult]) -> str:
    return format_fig11(points_from_results(results))


STUDY = Study(
    name="fig11",
    title="fused vs. unfused SDDMM (Figure 11)",
    enumerate_fn=enumerate_specs,
    execute_fn=execute,
    render_fn=render,
    uses_backend=True,
    quick_options={"size": 12, "k_sweep": (1, 4)},
)


def main() -> str:
    text = format_fig11(run_fig11())
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 11 reproduction: fused vs. unfused SDDMM performance.

The paper sweeps the dense contraction depth K over {1, 10, 100} with a
95%-sparse uniform B and dense C, D of dimension I = J = 250, and plots
cycles for the unfused (factorized), fused-coiterating, and fused-
locating implementations.  The claims under test:

* unfused is far worse (it computes the whole dense GEMM);
* fused locating beats fused coiteration at small K, with the gap
  closing as the dense K loop starts to dominate.

Dimensions scale down by default so the cycle-level simulation finishes
in seconds; the shape is size-stable (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..data.synthetic import random_sparse_matrix
from ..kernels.sddmm import (
    sddmm_fused_coiter,
    sddmm_fused_locate,
    sddmm_reference,
    sddmm_unfused,
)

VARIANTS = ("unfused", "fused_locate", "fused_coiter")


@dataclass
class Fig11Point:
    k: int
    variant: str
    cycles: int
    correct: bool


def run_fig11(
    size: int = 40,
    k_sweep: Tuple[int, ...] = (1, 10, 100),
    sparsity: float = 0.95,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig11Point]:
    """Sweep K for the three SDDMM implementations."""
    rng = np.random.default_rng(seed)
    B = random_sparse_matrix(size, size, 1.0 - sparsity, seed=seed)
    points = []
    for k in k_sweep:
        C = rng.uniform(0.1, 1.0, size=(size, k))
        D = rng.uniform(0.1, 1.0, size=(size, k))
        reference = sddmm_reference(B, C, D)
        for variant, fn in (
            ("unfused", sddmm_unfused),
            ("fused_locate", sddmm_fused_locate),
            ("fused_coiter", sddmm_fused_coiter),
        ):
            result = fn(B, C, D, backend=backend)
            points.append(
                Fig11Point(k, variant, result.cycles,
                           bool(np.allclose(result.output, reference)))
            )
    return points


def format_fig11(points: List[Fig11Point]) -> str:
    ks = sorted({p.k for p in points})
    lines = [f"{'K':>6}" + "".join(f"{v:>16}" for v in VARIANTS)]
    lines.append("-" * len(lines[0]))
    for k in ks:
        row = f"{k:>6}"
        for variant in VARIANTS:
            cycles = next(p.cycles for p in points if p.k == k and p.variant == variant)
            row += f"{cycles:>16}"
        lines.append(row)
    return "\n".join(lines)


def main() -> str:
    text = format_fig11(run_fig11())
    print(text)
    return text


if __name__ == "__main__":
    main()

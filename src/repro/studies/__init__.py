"""Reproduction drivers, one per table/figure of the paper's evaluation."""

from . import fig11, fig12, fig13, fig14, fig15, table1, table2

__all__ = ["fig11", "fig12", "fig13", "fig14", "fig15", "table1", "table2"]

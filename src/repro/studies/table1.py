"""Table 1 reproduction: SAM primitive counts for real-world expressions.

Compiles the twelve Table 1 expressions with Custard and tallies the
primitive composition of each generated graph, next to the paper's
published counts.  The paper's SpM*SpM row reports the dropper count as
a 0-2 range across dataflow orders; we list the linear-combination
(``ikj``) instantiation and verify the range separately in the tests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..harness.registry import Study
from ..harness.spec import ExperimentResult, ExperimentSpec
from ..lang import TABLE1_COLUMNS, compile_expression, expression_features, primitive_row


@dataclass(frozen=True)
class Table1Entry:
    name: str
    expression: str
    formats: Optional[Dict] = None
    schedule: Optional[Tuple[str, ...]] = None
    #: the paper's published counts, in TABLE1_COLUMNS order
    paper: Tuple[int, ...] = ()


ENTRIES: Tuple[Table1Entry, ...] = (
    Table1Entry(
        "SpMV", "x(i) = B(i,j) * c(j)", paper=(3, 1, 1, 0, 1, 1, 1, 2, 2)
    ),
    Table1Entry(
        "SpM*SpM", "X(i,j) = B(i,k) * C(k,j)",
        schedule=("i", "k", "j"), paper=(4, 2, 1, 0, 1, 1, 1, 3, 2),
    ),
    Table1Entry(
        "SDDMM", "X(i,j) = B(i,j) * C(i,k) * D(j,k)",
        paper=(6, 3, 3, 0, 2, 1, 2, 3, 3),
    ),
    Table1Entry(
        "InnerProd", "chi = B(i,j,k) * C(i,j,k)", paper=(6, 0, 3, 0, 1, 3, 0, 1, 2)
    ),
    Table1Entry(
        "TTV", "X(i,j) = B(i,j,k) * c(k)", paper=(4, 2, 1, 0, 1, 1, 2, 3, 2)
    ),
    Table1Entry(
        "TTM", "X(i,j,k) = B(i,j,l) * C(k,l)", paper=(5, 3, 1, 0, 1, 1, 3, 4, 2)
    ),
    Table1Entry(
        "MTTKRP", "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)",
        paper=(7, 5, 3, 0, 2, 2, 3, 3, 3),
    ),
    Table1Entry(
        "Residual", "x(i) = b(i) - C(i,j) * d(j)", paper=(4, 1, 1, 1, 2, 1, 1, 2, 3)
    ),
    Table1Entry(
        "MatTransMul", "x(i) = alpha * B(j,i) * c(j) + beta * d(i)",
        schedule=("j", "i"), paper=(4, 4, 1, 1, 4, 1, 1, 2, 5),
    ),
    Table1Entry(
        "MMAdd", "X(i,j) = B(i,j) + C(i,j)", paper=(4, 0, 0, 2, 1, 0, 0, 3, 2)
    ),
    Table1Entry(
        "Plus3", "X(i,j) = B(i,j) + C(i,j) + D(i,j)",
        paper=(6, 0, 0, 2, 2, 0, 0, 3, 3),
    ),
    Table1Entry(
        "Plus2", "X(i,j,k) = B(i,j,k) + C(i,j,k)", paper=(6, 0, 0, 3, 1, 0, 0, 4, 2)
    ),
)

def _random_inputs(program, seed: int):
    """Random sparse operands shaped to fit *program*'s accesses."""
    import numpy as np

    rng = np.random.default_rng(seed)
    order = program.info.order
    sizes = {var: 5 + (3 * i) % 5 for i, var in enumerate(order)}
    inputs = {}
    for access in program.assignment.accesses:
        if access is program.assignment.lhs:
            continue
        shape = tuple(sizes[v] for v in access.indices)
        if not shape:
            inputs[access.tensor] = float(rng.uniform(0.5, 1.5))
        else:
            dense = (rng.random(shape) < 0.45) * rng.random(shape)
            inputs[access.tensor] = dense
    return inputs


def crd_drop_differential(program, counts: Dict[str, int], paper: Dict[str, int],
                          seeds: Sequence[int] = (0, 1, 2)) -> Dict[str, Any]:
    """Executed differential check for a ``crd_drop`` count divergence.

    The paper's hand-derived graphs place one value dropper after *each*
    scalar reducer; our rule inserts a single dropper after the last one
    (see ``repro.lang.lower._lower_construction``).  The extra droppers
    sit between two chained scalar reducers, where the merged coordinate
    stream of the outer contracted variable pairs one-to-one with the
    inner reduction's value stream, and their only downstream consumer
    is the outer *sum* — dropping zero-valued pairs cannot change a sum.

    Rather than trusting that argument, this check executes it: the
    compiled graph runs on random sparse operands with the candidate
    stream pair recorded, the paper's extra dropper is then simulated on
    the recorded streams, and both the dropped and undropped streams are
    pushed through the downstream reducer.  The divergence is *proved
    redundant* only if the reduced outputs are bit-identical on every
    trial (and the structural count matches paper = ours + #chained
    reducer boundaries).
    """
    from ..blocks import ScalarReducer, Sink, StreamFeeder, ValueDropper
    from ..sim.backends import run_blocks
    from ..streams.channel import Channel

    graph = program.graph
    chains = [
        (edge.src, edge.dst)
        for edge in graph.edges
        if graph.nodes[edge.src].kind == "reduce"
        and graph.nodes[edge.dst].kind == "reduce"
        and graph.nodes[edge.src].params.get("n") == 0
        and graph.nodes[edge.dst].params.get("n") == 0
    ]
    report: Dict[str, Any] = {
        "column": "crd_drop",
        "ours": counts["crd_drop"],
        "paper": paper["crd_drop"],
        "chained_scalar_reducers": len(chains),
        "redundant": False,
        "trials": 0,
        "dropped_pairs": 0,
    }
    if counts["crd_drop"] + len(chains) != paper["crd_drop"]:
        report["detail"] = (
            "unexplained: paper count is not ours plus one dropper per "
            "chained scalar-reducer boundary"
        )
        return report

    record = []
    for src, dst in chains:
        var = graph.nodes[dst].params["var"]
        crd_node = program.info.merged_crd_nodes[var]
        record += [f"{crd_node}.crd", f"{src}.val"]

    def recorded_tokens(bound, node: str, port: str):
        prefix = f"{node}.{port}"
        for name, channel in bound.channels.items():
            if channel.record and (name == prefix or name.startswith(prefix + "->")):
                return list(channel.recorded_stream().tokens)
        raise LookupError(f"stream {prefix} was not recorded")

    dropped_total = 0
    for seed in seeds:
        inputs = _random_inputs(program, seed)
        result = program.run(inputs, record=tuple(record), backend="functional-seq")
        for src, dst in chains:
            var = graph.nodes[dst].params["var"]
            crd_node = program.info.merged_crd_nodes[var]
            crds = recorded_tokens(result.bound, crd_node, "crd")
            vals = recorded_tokens(result.bound, src, "val")
            policy = graph.nodes[dst].params.get("empty_policy", "zero")

            def reduce_stream(val_tokens):
                val_ch, out = Channel("val", "vals"), Channel("out", "vals")
                sink = Sink(out)
                run_blocks(
                    [StreamFeeder(val_tokens, val_ch),
                     ScalarReducer(val_ch, out, empty_policy=policy), sink],
                    backend="functional-seq",
                )
                return sink.tokens

            # Simulate the paper's extra dropper on the recorded pair.
            crd_ch = Channel("crd", "crd")
            val_ch = Channel("val", "vals")
            out_crd = Channel("dcrd", "crd")
            out_val = Channel("dval", "vals")
            dropper = ValueDropper(crd_ch, val_ch, out_crd, out_val, name="paper_extra")
            sink_c, sink_v = Sink(out_crd, name="sc"), Sink(out_val, name="sv")
            run_blocks(
                [StreamFeeder(crds, crd_ch, name="fc"),
                 StreamFeeder(vals, val_ch, name="fv"),
                 dropper, sink_c, sink_v],
                backend="functional-seq",
            )
            dropped_total += dropper.dropped
            if reduce_stream(sink_v.tokens) != reduce_stream(vals):
                report["detail"] = (
                    f"NOT redundant: dropping zero pairs before {dst} "
                    f"changed the reduced stream (seed {seed})"
                )
                return report
            report["trials"] += 1
    report["redundant"] = report["trials"] > 0
    report["dropped_pairs"] = dropped_total
    report["detail"] = (
        f"proved redundant on {report['trials']} recorded stream pairs "
        f"({dropped_total} zero pairs dropped without changing the "
        f"downstream reduction)"
    )
    return report


def enumerate_specs(backend: str = "-") -> List[ExperimentSpec]:
    """One spec per Table 1 expression (compile-only: backend ignored)."""
    return [ExperimentSpec("table1", {"name": entry.name}) for entry in ENTRIES]


def execute(spec: ExperimentSpec) -> Dict[str, Any]:
    """Compile one entry and compare its counts to the paper row.

    A row may diverge from the paper's hand-derived count only if an
    *executed* differential check proves the divergence immaterial; there
    is no static whitelist.  Currently the only such divergence is the
    dropper count of rows with chained scalar reducers (MTTKRP), checked
    by :func:`crd_drop_differential`.
    """
    entry = next(e for e in ENTRIES if e.name == spec.point["name"])
    program = compile_expression(
        entry.expression, formats=entry.formats, schedule=entry.schedule
    )
    counts = primitive_row(program)
    features = expression_features(program)
    paper = dict(zip(TABLE1_COLUMNS, entry.paper))
    differing = [col for col in TABLE1_COLUMNS if counts[col] != paper[col]]
    divergence: Optional[Dict[str, Any]] = None
    if differing == ["crd_drop"]:
        divergence = crd_drop_differential(program, counts, paper)
        match = bool(divergence["redundant"])
    else:
        match = not differing
    features_dict = asdict(features)
    # Payloads are JSON records; keep them JSON-native (tuples → lists).
    features_dict["input_orders"] = list(features_dict["input_orders"])
    features_dict["ops"] = list(features_dict["ops"])
    return {"counts": dict(counts), "features": features_dict,
            "paper": paper, "match": bool(match), "divergence": divergence}


def rows_from_results(results: Sequence[ExperimentResult]):
    from ..lang.analysis import ExpressionFeatures

    rows = []
    for result in results:
        entry = next(e for e in ENTRIES if e.name == result.spec.point["name"])
        raw = dict(result.payload["features"])
        # JSON round-trips tuples as lists; restore the dataclass shape.
        raw["input_orders"] = tuple(raw["input_orders"])
        raw["ops"] = tuple(raw["ops"])
        features = ExpressionFeatures(**raw)
        rows.append((entry, features, result.payload["counts"],
                     result.payload["paper"],
                     result.payload.get("divergence"),
                     result.payload["match"]))
    return rows


def run_table1():
    """Compile every entry; returns rows of (entry, features, counts, match)."""
    from ..harness.runner import SweepRunner

    return rows_from_results(SweepRunner().run(enumerate_specs()).results)


def format_table1(rows) -> str:
    header = f"{'Name':<12}" + "".join(f"{c[:7]:>9}" for c in TABLE1_COLUMNS) + "  match"
    lines = [header, "-" * len(header)]
    notes = []
    for entry, _, counts, paper, divergence, match in rows:
        flag = "yes" if match else "DIFF"
        if divergence is not None and match:
            flag = "yes*"
            notes.append(
                f"* {entry.name}: {divergence['column']} {divergence['ours']} vs "
                f"paper {divergence['paper']} — {divergence['detail']}"
            )
        ours = f"{entry.name:<12}" + "".join(
            f"{counts[c]:>9}" for c in TABLE1_COLUMNS
        ) + f"  {flag}"
        ref = f"{'  (paper)':<12}" + "".join(f"{paper[c]:>9}" for c in TABLE1_COLUMNS)
        lines.extend([ours, ref])
    lines.extend(notes)
    return "\n".join(lines)


def render(results: Sequence[ExperimentResult]) -> str:
    return format_table1(rows_from_results(results))


STUDY = Study(
    name="table1",
    title="SAM primitive counts (Table 1)",
    enumerate_fn=enumerate_specs,
    execute_fn=execute,
    render_fn=render,
    uses_backend=False,
)


def main() -> str:
    text = format_table1(run_table1())
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Table 1 reproduction: SAM primitive counts for real-world expressions.

Compiles the twelve Table 1 expressions with Custard and tallies the
primitive composition of each generated graph, next to the paper's
published counts.  The paper's SpM*SpM row reports the dropper count as
a 0-2 range across dataflow orders; we list the linear-combination
(``ikj``) instantiation and verify the range separately in the tests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..harness.registry import Study
from ..harness.spec import ExperimentResult, ExperimentSpec
from ..lang import TABLE1_COLUMNS, compile_expression, expression_features, primitive_row


@dataclass(frozen=True)
class Table1Entry:
    name: str
    expression: str
    formats: Optional[Dict] = None
    schedule: Optional[Tuple[str, ...]] = None
    #: the paper's published counts, in TABLE1_COLUMNS order
    paper: Tuple[int, ...] = ()


ENTRIES: Tuple[Table1Entry, ...] = (
    Table1Entry(
        "SpMV", "x(i) = B(i,j) * c(j)", paper=(3, 1, 1, 0, 1, 1, 1, 2, 2)
    ),
    Table1Entry(
        "SpM*SpM", "X(i,j) = B(i,k) * C(k,j)",
        schedule=("i", "k", "j"), paper=(4, 2, 1, 0, 1, 1, 1, 3, 2),
    ),
    Table1Entry(
        "SDDMM", "X(i,j) = B(i,j) * C(i,k) * D(j,k)",
        paper=(6, 3, 3, 0, 2, 1, 2, 3, 3),
    ),
    Table1Entry(
        "InnerProd", "chi = B(i,j,k) * C(i,j,k)", paper=(6, 0, 3, 0, 1, 3, 0, 1, 2)
    ),
    Table1Entry(
        "TTV", "X(i,j) = B(i,j,k) * c(k)", paper=(4, 2, 1, 0, 1, 1, 2, 3, 2)
    ),
    Table1Entry(
        "TTM", "X(i,j,k) = B(i,j,l) * C(k,l)", paper=(5, 3, 1, 0, 1, 1, 3, 4, 2)
    ),
    Table1Entry(
        "MTTKRP", "X(i,j) = B(i,k,l) * C(j,k) * D(j,l)",
        paper=(7, 5, 3, 0, 2, 2, 3, 3, 3),
    ),
    Table1Entry(
        "Residual", "x(i) = b(i) - C(i,j) * d(j)", paper=(4, 1, 1, 1, 2, 1, 1, 2, 3)
    ),
    Table1Entry(
        "MatTransMul", "x(i) = alpha * B(j,i) * c(j) + beta * d(i)",
        schedule=("j", "i"), paper=(4, 4, 1, 1, 4, 1, 1, 2, 5),
    ),
    Table1Entry(
        "MMAdd", "X(i,j) = B(i,j) + C(i,j)", paper=(4, 0, 0, 2, 1, 0, 0, 3, 2)
    ),
    Table1Entry(
        "Plus3", "X(i,j) = B(i,j) + C(i,j) + D(i,j)",
        paper=(6, 0, 0, 2, 2, 0, 0, 3, 3),
    ),
    Table1Entry(
        "Plus2", "X(i,j,k) = B(i,j,k) + C(i,j,k)", paper=(6, 0, 0, 3, 1, 0, 0, 4, 2)
    ),
)

#: rows where our systematic dropper-insertion rule differs from the
#: paper's hand-derived count (see EXPERIMENTS.md)
KNOWN_DIVERGENCES = {"MTTKRP": {"crd_drop": (2, 3)}}


def enumerate_specs(backend: str = "-") -> List[ExperimentSpec]:
    """One spec per Table 1 expression (compile-only: backend ignored)."""
    return [ExperimentSpec("table1", {"name": entry.name}) for entry in ENTRIES]


def execute(spec: ExperimentSpec) -> Dict[str, Any]:
    """Compile one entry and compare its counts to the paper row."""
    entry = next(e for e in ENTRIES if e.name == spec.point["name"])
    program = compile_expression(
        entry.expression, formats=entry.formats, schedule=entry.schedule
    )
    counts = primitive_row(program)
    features = expression_features(program)
    paper = dict(zip(TABLE1_COLUMNS, entry.paper))
    divergences = KNOWN_DIVERGENCES.get(entry.name, {})
    match = all(
        counts[col] == paper[col]
        for col in TABLE1_COLUMNS
        if col not in divergences
    )
    features_dict = asdict(features)
    # Payloads are JSON records; keep them JSON-native (tuples → lists).
    features_dict["input_orders"] = list(features_dict["input_orders"])
    features_dict["ops"] = list(features_dict["ops"])
    return {"counts": dict(counts), "features": features_dict,
            "paper": paper, "match": bool(match)}


def rows_from_results(results: Sequence[ExperimentResult]):
    from ..lang.analysis import ExpressionFeatures

    rows = []
    for result in results:
        entry = next(e for e in ENTRIES if e.name == result.spec.point["name"])
        raw = dict(result.payload["features"])
        # JSON round-trips tuples as lists; restore the dataclass shape.
        raw["input_orders"] = tuple(raw["input_orders"])
        raw["ops"] = tuple(raw["ops"])
        features = ExpressionFeatures(**raw)
        rows.append((entry, features, result.payload["counts"],
                     result.payload["paper"], result.payload["match"]))
    return rows


def run_table1():
    """Compile every entry; returns rows of (entry, features, counts, match)."""
    from ..harness.runner import SweepRunner

    return rows_from_results(SweepRunner().run(enumerate_specs()).results)


def format_table1(rows) -> str:
    header = f"{'Name':<12}" + "".join(f"{c[:7]:>9}" for c in TABLE1_COLUMNS) + "  match"
    lines = [header, "-" * len(header)]
    for entry, _, counts, paper, match in rows:
        ours = f"{entry.name:<12}" + "".join(
            f"{counts[c]:>9}" for c in TABLE1_COLUMNS
        ) + f"  {'yes' if match else 'DIFF'}"
        ref = f"{'  (paper)':<12}" + "".join(f"{paper[c]:>9}" for c in TABLE1_COLUMNS)
        lines.extend([ours, ref])
    return "\n".join(lines)


def render(results: Sequence[ExperimentResult]) -> str:
    return format_table1(rows_from_results(results))


STUDY = Study(
    name="table1",
    title="SAM primitive counts (Table 1)",
    enumerate_fn=enumerate_specs,
    execute_fn=execute,
    render_fn=render,
    uses_backend=False,
)


def main() -> str:
    text = format_table1(run_table1())
    print(text)
    return text


if __name__ == "__main__":
    main()

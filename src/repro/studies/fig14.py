"""Figure 14 reproduction: stream token-composition analysis.

Runs the matrix identity expression ``X(i,j) = B(i,j)`` (B a sparse DCSR
matrix) over the Table 3 matrix set and breaks the output coordinate
stream of each level scanner down by token type: non-control, stop,
done, and idle (cycles in which the scanner pushed nothing, dominant for
outer levels whose scanner finishes while inner levels keep streaming).

Paper headline numbers: average non-idle control overhead of 0.95% for
outer levels and 16.20% for inner levels; 83.32% of outer-level tokens
are idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..data.suitesparse import TABLE3
from ..formats.tensor import FiberTensor
from ..harness.registry import Study
from ..harness.spec import ExperimentResult, ExperimentSpec
from ..lang import compile_expression
from ..sim.stats import TokenBreakdown, channel_breakdown


@dataclass
class Fig14Row:
    matrix: str
    nnz: int
    outer: TokenBreakdown
    inner: TokenBreakdown


def enumerate_specs(
    max_nnz: Optional[int] = 30000, seed: int = 0, backend: str = "cycle",
) -> List[ExperimentSpec]:
    """One spec per Table 3 matrix under the nnz cap (None = all 15).

    The idle fractions need a timed backend (``cycle`` or ``event``);
    ``functional`` reports zero cycles and would skew them.  The spec
    point records how each matrix currently *resolves* (synthetic
    stand-in vs. a real ``.mtx`` in the data dir), so dropping a real
    file in changes the cache key — stale synthetic results are never
    replayed as if they were real-matrix measurements.
    """
    from ..data.registry import default_registry

    registry = default_registry()
    return [
        ExperimentSpec(
            "fig14",
            {"matrix": spec.name, "seed": seed,
             "source": registry.source(spec.name)},
            backend=backend,
        )
        for spec in TABLE3
        if max_nnz is None or spec.nnz <= max_nnz
    ]


def execute(spec: ExperimentSpec) -> Dict[str, Any]:
    """Token breakdown of the outer/inner scanner streams of one matrix."""
    from ..data.registry import default_registry

    matrix_spec = next(m for m in TABLE3 if m.name == spec.point["matrix"])
    program = compile_expression("X(i,j) = B(i,j)")
    scan_i = next(n for n in program.graph.nodes if n.endswith("_i"))
    scan_j = next(n for n in program.graph.nodes if n.endswith("_j"))
    # Registry-backed: a real .mtx in $REPRO_DATA_DIR wins over the
    # synthetic stand-in (see EXPERIMENTS.md "Datasets").  The spec's
    # recorded resolution must still hold at run time, otherwise the
    # measurement would be cached under the wrong source label.
    registry = default_registry()
    expected_source = spec.point.get("source")
    actual_source = registry.source(matrix_spec.name)
    if expected_source is not None and actual_source != expected_source:
        raise RuntimeError(
            f"dataset {matrix_spec.name!r} resolution changed mid-sweep "
            f"(spec says {expected_source}, now {actual_source}); rerun "
            f"the sweep so specs are re-enumerated"
        )
    matrix = registry.load_matrix(matrix_spec.name, seed=spec.point["seed"])
    # keep_zeros: a real file's explicit-zero entries are stored
    # coordinates and must appear in the measured streams (matching the
    # reported nnz); synthetic stand-ins have no zeros, so this is a
    # no-op for them.
    tensor = FiberTensor.from_scipy(matrix, name="B", keep_zeros=True)
    result = program.run(
        {"B": tensor}, record=(f"{scan_i}.crd", f"{scan_j}.crd"),
        backend=spec.backend,
    )
    outer = inner = None
    for channel in result.bound.channels.values():
        if not channel.record:
            continue
        breakdown = channel_breakdown(channel, total_cycles=result.cycles)
        if channel.name.startswith(scan_i):
            outer = breakdown
        elif channel.name.startswith(scan_j):
            inner = breakdown
    return {
        # The loaded matrix's actual nnz (equals the spec for synthetic
        # stand-ins; a real file reports what was really measured).
        "nnz": int(matrix.nnz),
        "outer": outer.to_dict(),
        "inner": inner.to_dict(),
    }


def rows_from_results(results: Sequence[ExperimentResult]) -> List[Fig14Row]:
    return [
        Fig14Row(r.spec.point["matrix"], r.payload["nnz"],
                 TokenBreakdown.from_dict(r.payload["outer"]),
                 TokenBreakdown.from_dict(r.payload["inner"]))
        for r in results
    ]


def run_fig14(
    max_nnz: Optional[int] = 30000, seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig14Row]:
    """Token breakdown per matrix (serial, uncached)."""
    from ..harness.runner import SweepRunner
    from ..sim.backends import resolve_backend

    specs = enumerate_specs(max_nnz=max_nnz, seed=seed,
                            backend=resolve_backend(backend))
    return rows_from_results(SweepRunner().run(specs).results)


def averages(rows: List[Fig14Row]) -> Dict[str, float]:
    """The paper's three headline percentages."""
    if not rows:
        return {}
    outer_control = sum(r.outer.control_overhead() for r in rows) / len(rows)
    inner_control = sum(r.inner.control_overhead() for r in rows) / len(rows)
    outer_idle = sum(r.outer.fractions()["idle"] for r in rows) / len(rows)
    return {
        "outer_nonidle_control_pct": 100.0 * outer_control,
        "inner_nonidle_control_pct": 100.0 * inner_control,
        "outer_idle_pct": 100.0 * outer_idle,
    }


def format_fig14(rows: List[Fig14Row]) -> str:
    header = (
        f"{'matrix':<14}{'nnz':>8} | "
        f"{'out idle%':>10}{'out stop%':>10}{'out data%':>10} | "
        f"{'in idle%':>9}{'in stop%':>9}{'in data%':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        of = row.outer.fractions()
        inf = row.inner.fractions()
        lines.append(
            f"{row.matrix:<14}{row.nnz:>8} | "
            f"{100*of['idle']:>10.2f}{100*of['stop']:>10.2f}{100*of['data']:>10.2f} | "
            f"{100*inf['idle']:>9.2f}{100*inf['stop']:>9.2f}{100*inf['data']:>9.2f}"
        )
    avg = averages(rows)
    lines.append("")
    lines.append(
        "averages: outer non-idle control "
        f"{avg['outer_nonidle_control_pct']:.2f}% (paper 0.95%), inner "
        f"{avg['inner_nonidle_control_pct']:.2f}% (paper 16.20%), outer idle "
        f"{avg['outer_idle_pct']:.2f}% (paper 83.32%)"
    )
    return "\n".join(lines)


def render(results: Sequence[ExperimentResult]) -> str:
    return format_fig14(rows_from_results(results))


STUDY = Study(
    name="fig14",
    title="stream token composition (Figure 14)",
    enumerate_fn=enumerate_specs,
    execute_fn=execute,
    render_fn=render,
    uses_backend=True,
    quick_options={"max_nnz": 200},
)


def main() -> str:
    text = format_fig14(run_fig14())
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Figure 13 reproduction: iteration acceleration techniques.

Element-wise sparse-vector multiply over size-2000 vectors in six
configurations (Dense, Crd, Crd+skip, Crd+split, BV, BV+split), swept
three ways exactly as in section 6.3:

* (a) nonzeros of uniformly random vectors (performance vs. sparsity);
* (b) run length of `runs` vectors (coordinate skipping's best case);
* (c) block size of `blocks` vectors.

The paper's parameters: vectors of dimension 2000; for runs/blocks, 400
nonzeros (20%); bitvector width b = 64; split factor s = 64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..data.synthetic import blocks_vectors, runs_vectors, urandom_vector
from ..harness.registry import Study
from ..harness.spec import ExperimentResult, ExperimentSpec, as_tuple
from ..kernels.elementwise import CONFIGS, vecmul

#: the three sub-sweeps of section 6.3, in figure order
SWEEPS = ("nnz", "run_length", "block_size")


@dataclass
class Fig13Point:
    sweep: str  # "nnz" | "run_length" | "block_size"
    x: int
    config: str
    cycles: int
    correct: bool


def _vectors(sweep: str, x: int, size: int, nnz: int, seed: int):
    """The b, c input pair for one sweep point."""
    if sweep == "nnz":
        return urandom_vector(size, x, seed=seed), urandom_vector(size, x, seed=seed + 1)
    if sweep == "run_length":
        return runs_vectors(size, nnz, x, seed=seed)
    if sweep == "block_size":
        return blocks_vectors(size, nnz, x, seed=seed)
    raise ValueError(f"unknown fig13 sweep {sweep!r}")


def enumerate_specs(
    size: int = 2000,
    nnz_sweep: Sequence[int] = (5, 10, 20, 50, 100, 200, 400, 800),
    nnz: int = 400,
    run_sweep: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    block_sweep: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    split: int = 50,
    bits_per_word: int = 64,
    seed: int = 0,
    sweeps: Sequence[str] = SWEEPS,
    backend: str = "cycle",
) -> List[ExperimentSpec]:
    """One spec per (sweep, x, config) point across the three sub-sweeps."""
    x_values = {"nnz": as_tuple(nnz_sweep), "run_length": as_tuple(run_sweep),
                "block_size": as_tuple(block_sweep)}
    return [
        ExperimentSpec(
            "fig13",
            {"sweep": sweep, "x": x, "config": config, "size": size, "nnz": nnz,
             "split": split, "bits_per_word": bits_per_word, "seed": seed},
            backend=backend,
        )
        for sweep in as_tuple(sweeps)
        for x in x_values[sweep]
        for config in CONFIGS
    ]


def execute(spec: ExperimentSpec) -> Dict[str, Any]:
    p = spec.point
    b, c = _vectors(p["sweep"], p["x"], p["size"], p["nnz"], p["seed"])
    result = vecmul(p["config"], b, c, split=p["split"],
                    bits_per_word=p["bits_per_word"], backend=spec.backend)
    return {
        "cycles": int(result.cycles),
        "correct": bool(result.check_against(b, c)),
    }


def points_from_results(results: Sequence[ExperimentResult]) -> List[Fig13Point]:
    return [
        Fig13Point(r.spec.point["sweep"], r.spec.point["x"], r.spec.point["config"],
                   r.payload["cycles"], r.payload["correct"])
        for r in results
    ]


def _run_sweep(sweep: str, backend: Optional[str], **options) -> List[Fig13Point]:
    from ..harness.runner import SweepRunner
    from ..sim.backends import resolve_backend

    specs = enumerate_specs(sweeps=(sweep,), backend=resolve_backend(backend),
                            **options)
    return points_from_results(SweepRunner().run(specs).results)


def run_fig13a(
    size: int = 2000,
    nnz_sweep: Tuple[int, ...] = (5, 10, 20, 50, 100, 200, 400, 800),
    split: int = 50,
    bits_per_word: int = 64,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig13Point]:
    """(a) performance vs. sparsity of uniformly random vectors."""
    return _run_sweep("nnz", backend, size=size, nnz_sweep=nnz_sweep,
                      split=split, bits_per_word=bits_per_word, seed=seed)


def run_fig13b(
    size: int = 2000,
    nnz: int = 400,
    run_sweep: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    split: int = 50,
    bits_per_word: int = 64,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig13Point]:
    """(b) performance vs. run length of `runs` vectors."""
    return _run_sweep("run_length", backend, size=size, nnz=nnz,
                      run_sweep=run_sweep, split=split,
                      bits_per_word=bits_per_word, seed=seed)


def run_fig13c(
    size: int = 2000,
    nnz: int = 400,
    block_sweep: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    split: int = 50,
    bits_per_word: int = 64,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig13Point]:
    """(c) performance vs. block size of blocked vectors."""
    return _run_sweep("block_size", backend, size=size, nnz=nnz,
                      block_sweep=block_sweep, split=split,
                      bits_per_word=bits_per_word, seed=seed)


def format_fig13(points: List[Fig13Point]) -> str:
    xs = sorted({p.x for p in points})
    sweep = points[0].sweep if points else "?"
    lines = [f"{sweep:>12}" + "".join(f"{c:>11}" for c in CONFIGS)]
    lines.append("-" * len(lines[0]))
    for x in xs:
        row = f"{x:>12}"
        for config in CONFIGS:
            cycles = next(p.cycles for p in points if p.x == x and p.config == config)
            row += f"{cycles:>11}"
        lines.append(row)
    return "\n".join(lines)


def render(results: Sequence[ExperimentResult]) -> str:
    points = points_from_results(results)
    parts = []
    for sweep in SWEEPS:
        subset = [p for p in points if p.sweep == sweep]
        if subset:
            parts.append(format_fig13(subset))
    return "\n\n".join(parts)


STUDY = Study(
    name="fig13",
    title="iteration acceleration structures (Figure 13)",
    enumerate_fn=enumerate_specs,
    execute_fn=execute,
    render_fn=render,
    uses_backend=True,
    quick_options={"size": 200, "nnz": 40, "split": 10,
                   "nnz_sweep": (10, 40), "run_sweep": (2, 20),
                   "block_sweep": (2, 8)},
)


def main(backend: Optional[str] = None) -> str:
    parts = []
    for run in (run_fig13a, run_fig13b, run_fig13c):
        parts.append(format_fig13(run(backend=backend)))
        print(parts[-1])
        print()
    return "\n\n".join(parts)


if __name__ == "__main__":
    main()

"""Figure 13 reproduction: iteration acceleration techniques.

Element-wise sparse-vector multiply over size-2000 vectors in six
configurations (Dense, Crd, Crd+skip, Crd+split, BV, BV+split), swept
three ways exactly as in section 6.3:

* (a) nonzeros of uniformly random vectors (performance vs. sparsity);
* (b) run length of `runs` vectors (coordinate skipping's best case);
* (c) block size of `blocks` vectors.

The paper's parameters: vectors of dimension 2000; for runs/blocks, 400
nonzeros (20%); bitvector width b = 64; split factor s = 64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..data.synthetic import blocks_vectors, runs_vectors, urandom_vector
from ..kernels.elementwise import CONFIGS, vecmul


@dataclass
class Fig13Point:
    sweep: str  # "nnz" | "run_length" | "block_size"
    x: int
    config: str
    cycles: int
    correct: bool


def _measure(sweep: str, x: int, b, c, configs, split, bits,
             backend: Optional[str] = None) -> List[Fig13Point]:
    points = []
    for config in configs:
        result = vecmul(config, b, c, split=split, bits_per_word=bits,
                        backend=backend)
        points.append(
            Fig13Point(sweep, x, config, result.cycles, result.check_against(b, c))
        )
    return points


def run_fig13a(
    size: int = 2000,
    nnz_sweep: Tuple[int, ...] = (5, 10, 20, 50, 100, 200, 400, 800),
    split: int = 50,
    bits_per_word: int = 64,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig13Point]:
    """(a) performance vs. sparsity of uniformly random vectors."""
    points = []
    for nnz in nnz_sweep:
        b = urandom_vector(size, nnz, seed=seed)
        c = urandom_vector(size, nnz, seed=seed + 1)
        points += _measure("nnz", nnz, b, c, CONFIGS, split, bits_per_word,
                           backend=backend)
    return points


def run_fig13b(
    size: int = 2000,
    nnz: int = 400,
    run_sweep: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    split: int = 50,
    bits_per_word: int = 64,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig13Point]:
    """(b) performance vs. run length of `runs` vectors."""
    points = []
    for run_length in run_sweep:
        b, c = runs_vectors(size, nnz, run_length, seed=seed)
        points += _measure("run_length", run_length, b, c, CONFIGS, split,
                           bits_per_word, backend=backend)
    return points


def run_fig13c(
    size: int = 2000,
    nnz: int = 400,
    block_sweep: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    split: int = 50,
    bits_per_word: int = 64,
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig13Point]:
    """(c) performance vs. block size of blocked vectors."""
    points = []
    for block_size in block_sweep:
        b, c = blocks_vectors(size, nnz, block_size, seed=seed)
        points += _measure("block_size", block_size, b, c, CONFIGS, split,
                           bits_per_word, backend=backend)
    return points


def format_fig13(points: List[Fig13Point]) -> str:
    xs = sorted({p.x for p in points})
    sweep = points[0].sweep if points else "?"
    lines = [f"{sweep:>12}" + "".join(f"{c:>11}" for c in CONFIGS)]
    lines.append("-" * len(lines[0]))
    for x in xs:
        row = f"{x:>12}"
        for config in CONFIGS:
            cycles = next(p.cycles for p in points if p.x == x and p.config == config)
            row += f"{cycles:>11}"
        lines.append(row)
    return "\n".join(lines)


def main(backend: Optional[str] = None) -> str:
    parts = []
    for run in (run_fig13a, run_fig13b, run_fig13c):
        parts.append(format_fig13(run(backend=backend)))
        print(parts[-1])
        print()
    return "\n\n".join(parts)


if __name__ == "__main__":
    main()

"""Figure 12 reproduction: SpM*SpM performance across dataflow orders.

The paper simulates all six ijk permutations on two distinct 95%-sparse
uniformly random matrices (I = J = 250, K = 100) and finds: inner
product (ijk, jik) worst; linear combination of rows (ikj, jki) and
outer product (kij, kji) at least an order of magnitude better, because
coordinates are intersected at k before being repeated along the other
dimensions.

Default dimensions are scaled down for quick runs; the ordering of the
three dataflow families is what the figure demonstrates and is
size-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..data.synthetic import random_sparse_matrix
from ..kernels.spmm import FAMILY, ORDERS, run_spmm


@dataclass
class Fig12Point:
    order: str
    family: str
    cycles: int
    correct: bool


def run_fig12(
    i: int = 80, j: int = 80, k: int = 32, sparsity: float = 0.95, seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig12Point]:
    B = random_sparse_matrix(i, k, 1.0 - sparsity, seed=seed)
    C = random_sparse_matrix(k, j, 1.0 - sparsity, seed=seed + 1)
    expected = B @ C
    points = []
    for order in ORDERS:
        result = run_spmm(B, C, order, backend=backend)
        points.append(
            Fig12Point(order, FAMILY[order], result.cycles,
                       bool(np.allclose(result.to_numpy(), expected)))
        )
    return points


def family_means(points: List[Fig12Point]) -> Dict[str, float]:
    sums: Dict[str, List[int]] = {}
    for p in points:
        sums.setdefault(p.family, []).append(p.cycles)
    return {family: sum(vals) / len(vals) for family, vals in sums.items()}


def format_fig12(points: List[Fig12Point]) -> str:
    lines = [f"{'order':>6}{'cycles':>10}  family"]
    lines.append("-" * 44)
    for p in points:
        lines.append(f"{p.order:>6}{p.cycles:>10}  {p.family}")
    return "\n".join(lines)


def main() -> str:
    text = format_fig12(run_fig12())
    print(text)
    return text


if __name__ == "__main__":
    main()

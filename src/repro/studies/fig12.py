"""Figure 12 reproduction: SpM*SpM performance across dataflow orders.

The paper simulates all six ijk permutations on two distinct 95%-sparse
uniformly random matrices (I = J = 250, K = 100) and finds: inner
product (ijk, jik) worst; linear combination of rows (ikj, jki) and
outer product (kij, kji) at least an order of magnitude better, because
coordinates are intersected at k before being repeated along the other
dimensions.

Default dimensions are scaled down for quick runs; the ordering of the
three dataflow families is what the figure demonstrates and is
size-stable (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..data.synthetic import random_sparse_matrix
from ..harness.registry import Study
from ..harness.spec import ExperimentResult, ExperimentSpec
from ..kernels.spmm import FAMILY, ORDERS, run_spmm


@dataclass
class Fig12Point:
    order: str
    family: str
    cycles: int
    correct: bool


def enumerate_specs(
    i: int = 80, j: int = 80, k: int = 32, sparsity: float = 0.95, seed: int = 0,
    backend: str = "cycle",
) -> List[ExperimentSpec]:
    """One spec per ijk permutation."""
    return [
        ExperimentSpec(
            "fig12",
            {"i": i, "j": j, "k": k, "order": order,
             "sparsity": sparsity, "seed": seed},
            backend=backend,
        )
        for order in ORDERS
    ]


def execute(spec: ExperimentSpec) -> Dict[str, Any]:
    p = spec.point
    B = random_sparse_matrix(p["i"], p["k"], 1.0 - p["sparsity"], seed=p["seed"])
    C = random_sparse_matrix(p["k"], p["j"], 1.0 - p["sparsity"], seed=p["seed"] + 1)
    result = run_spmm(B, C, p["order"], backend=spec.backend)
    return {
        "cycles": int(result.cycles),
        "family": FAMILY[p["order"]],
        "correct": bool(np.allclose(result.to_numpy(), B @ C)),
    }


def points_from_results(results: Sequence[ExperimentResult]) -> List[Fig12Point]:
    return [
        Fig12Point(r.spec.point["order"], r.payload["family"],
                   r.payload["cycles"], r.payload["correct"])
        for r in results
    ]


def run_fig12(
    i: int = 80, j: int = 80, k: int = 32, sparsity: float = 0.95, seed: int = 0,
    backend: Optional[str] = None,
) -> List[Fig12Point]:
    """All six dataflow orders (serial, uncached)."""
    from ..harness.runner import SweepRunner
    from ..sim.backends import resolve_backend

    specs = enumerate_specs(i=i, j=j, k=k, sparsity=sparsity, seed=seed,
                            backend=resolve_backend(backend))
    return points_from_results(SweepRunner().run(specs).results)


def family_means(points: List[Fig12Point]) -> Dict[str, float]:
    sums: Dict[str, List[int]] = {}
    for p in points:
        sums.setdefault(p.family, []).append(p.cycles)
    return {family: sum(vals) / len(vals) for family, vals in sums.items()}


def format_fig12(points: List[Fig12Point]) -> str:
    lines = [f"{'order':>6}{'cycles':>10}  family"]
    lines.append("-" * 44)
    for p in points:
        lines.append(f"{p.order:>6}{p.cycles:>10}  {p.family}")
    return "\n".join(lines)


def render(results: Sequence[ExperimentResult]) -> str:
    return format_fig12(points_from_results(results))


STUDY = Study(
    name="fig12",
    title="SpM*SpM dataflow orders (Figure 12)",
    enumerate_fn=enumerate_specs,
    execute_fn=execute,
    render_fn=render,
    uses_backend=True,
    quick_options={"i": 20, "j": 20, "k": 10},
)


def main() -> str:
    text = format_fig12(run_fig12())
    print(text)
    return text


if __name__ == "__main__":
    main()

"""Element-wise sparse vector multiply kernels (paper Figure 13).

Six configurations of ``x(i) = b(i) * c(i)`` over size-2000 vectors,
matching section 6.3's accelerator-structure study:

* ``dense``      — one uncompressed level each (dense coiteration);
* ``crd``        — one compressed coordinate level (two-finger merge);
* ``crd_skip``   — compressed with coordinate skipping (galloping);
* ``crd_split``  — two compressed levels (the vector split into chunks);
* ``bv``         — one pseudo-dense bitvector level;
* ``bv_split``   — two bitvector levels (a bit-tree).

Each builder returns a :class:`VecMulResult` with the output values and
the simulated cycle count.  The compressed/dense/split variants are
compiled by Custard; the skip and bitvector variants are hand-wired
because they exercise blocks the compiler does not emit (skip channels,
bitvector mergers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    BVExpander,
    BVIntersect,
    BitvectorLevelScanner,
    CompressedLevelWriter,
    Intersect,
    MergeSide,
    RootFeeder,
    ValsWriter,
    make_scanner,
)
from ..formats import BitvectorLevel, FiberTensor
from ..sim.engine import run_blocks
from ..streams.channel import Channel

CONFIGS = ("dense", "crd", "crd_skip", "crd_split", "bv", "bv_split")


@dataclass
class VecMulResult:
    """Output of one vector-multiply kernel run."""

    config: str
    cycles: int
    values: List[float]
    coords: List[int]

    def check_against(self, b: np.ndarray, c: np.ndarray) -> bool:
        """Compare nonzero products against the dense reference."""
        product = np.asarray(b) * np.asarray(c)
        expected = [v for v in product[product != 0]]
        got = [v for v in self.values if v != 0]
        return np.allclose(sorted(got), sorted(expected))


def _split_shape(size: int, split: int) -> tuple:
    if size % split:
        raise ValueError(f"split factor {split} must divide the size {size}")
    return (split, size // split)


def _compiled_vecmul(config: str, b, c, split: int) -> VecMulResult:
    from ..lang import compile_expression

    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    if config == "dense":
        prog = compile_expression(
            "x(i) = b(i) * c(i)", formats={"b": ["dense"], "c": ["dense"]}
        )
        res = prog.run({"b": b, "c": c})
    elif config == "crd":
        prog = compile_expression("x(i) = b(i) * c(i)")
        res = prog.run({"b": b, "c": c})
    elif config == "crd_split":
        shape = _split_shape(b.size, split)
        prog = compile_expression("x(i,j) = b(i,j) * c(i,j)")
        res = prog.run({"b": b.reshape(shape), "c": c.reshape(shape)})
    else:  # pragma: no cover - guarded by vecmul()
        raise ValueError(config)
    out = res.output
    return VecMulResult(config, res.cycles, list(out.vals), [])


def _skip_vecmul(b, c) -> VecMulResult:
    """Compressed coiteration with the galloping feedback of section 4.2."""
    bt = FiberTensor.from_numpy(np.asarray(b, dtype=float), name="b")
    ct = FiberTensor.from_numpy(np.asarray(c, dtype=float), name="c")
    blocks = []
    chans = {}

    def ch(name, kind="crd"):
        chans[name] = Channel(name, kind=kind)
        return chans[name]

    for tensor, tag in ((bt, "b"), (ct, "c")):
        blocks.append(RootFeeder(ch(f"{tag}_root", "ref"), name=f"root_{tag}"))
        blocks.append(
            make_scanner(
                tensor.levels[0],
                chans[f"{tag}_root"],
                ch(f"{tag}_crd"),
                ch(f"{tag}_ref", "ref"),
                in_skip=ch(f"{tag}_skip"),
                name=f"scan_{tag}",
            )
        )
    blocks.append(
        Intersect(
            [
                MergeSide(chans["b_crd"], [chans["b_ref"]], skip=chans["b_skip"]),
                MergeSide(chans["c_crd"], [chans["c_ref"]], skip=chans["c_skip"]),
            ],
            ch("x_crd"),
            [[ch("xb_ref", "ref")], [ch("xc_ref", "ref")]],
            name="intersect_i",
        )
    )
    blocks.append(ArrayLoad(bt.vals, chans["xb_ref"], ch("b_val", "vals"), name="vals_b"))
    blocks.append(ArrayLoad(ct.vals, chans["xc_ref"], ch("c_val", "vals"), name="vals_c"))
    blocks.append(ALU("mul", chans["b_val"], chans["c_val"], ch("x_val", "vals"), name="mul"))
    crd_writer = CompressedLevelWriter(chans["x_crd"], name="write_crd")
    val_writer = ValsWriter(chans["x_val"], name="write_vals")
    blocks.extend([crd_writer, val_writer])
    report = run_blocks(blocks)
    return VecMulResult("crd_skip", report.cycles, val_writer.vals, crd_writer.crd)


def _bv_chain(tag: str, levels: Sequence[BitvectorLevel], blocks, chans, ch):
    """Wire root -> bitvector scanners for one operand; returns port names."""
    blocks.append(RootFeeder(ch(f"{tag}_root", "ref"), name=f"root_{tag}"))
    upstream = f"{tag}_root"
    for depth, level in enumerate(levels):
        blocks.append(
            BitvectorLevelScanner(
                level,
                chans[upstream],
                ch(f"{tag}_bv{depth}", "bv"),
                ch(f"{tag}_base{depth}", "ref"),
                name=f"bvscan_{tag}{depth}",
            )
        )
        upstream = f"{tag}_base{depth}"
    return upstream


def _bv_vecmul(b, c, bits_per_word: int, split: bool) -> VecMulResult:
    """Bitvector (and bit-tree) element-wise multiply."""
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    size = b.size
    blocks: list = []
    chans = {}

    def ch(name, kind="crd"):
        chans[name] = Channel(name, kind=kind)
        return chans[name]

    def build_levels(vec) -> tuple:
        coords = [int(i) for i in np.flatnonzero(vec)]
        if not split:
            level = BitvectorLevel.from_fibers([coords], size, bits_per_word)
            return [level], list(vec[np.flatnonzero(vec)])
        # Bit-tree: an upper level marks which lower words are nonempty;
        # the lower level stores only the nonempty words (one per fiber).
        num_words = -(-size // bits_per_word)
        by_word: dict = {}
        for crd in coords:
            by_word.setdefault(crd // bits_per_word, []).append(crd % bits_per_word)
        nonzero_words = sorted(by_word)
        upper = BitvectorLevel.from_fibers([nonzero_words], num_words, bits_per_word)
        lower = BitvectorLevel.from_fibers(
            [by_word[w] for w in nonzero_words], bits_per_word, bits_per_word
        )
        return [upper, lower], list(vec[np.flatnonzero(vec)])

    levels_b, vals_b = build_levels(b)
    levels_c, vals_c = build_levels(c)

    # Upper (or only) level: scan + word-wise AND.
    last_b = _bv_chain("b", levels_b[:1], blocks, chans, ch)
    last_c = _bv_chain("c", levels_c[:1], blocks, chans, ch)
    blocks.append(
        BVIntersect(
            chans["b_bv0"], chans[last_b], chans["c_bv0"], chans[last_c],
            ch("and0", "bv"), ch("wa0", "bv"), ch("ba0", "ref"),
            ch("wb0", "bv"), ch("bb0", "ref"), name="bv_and0",
        )
    )
    blocks.append(
        BVExpander(
            bits_per_word, chans["and0"], chans["wa0"], chans["ba0"],
            chans["wb0"], chans["bb0"], ch("crd0"), ch("refb0", "ref"),
            ch("refc0", "ref"), name="bv_expand0",
        )
    )
    if split:
        # Lower level: scan the surviving words and AND again.
        blocks.append(
            BitvectorLevelScanner(
                levels_b[1], chans["refb0"], ch("b_bv1", "bv"), ch("b_base1", "ref"),
                name="bvscan_b1",
            )
        )
        blocks.append(
            BitvectorLevelScanner(
                levels_c[1], chans["refc0"], ch("c_bv1", "bv"), ch("c_base1", "ref"),
                name="bvscan_c1",
            )
        )
        blocks.append(
            BVIntersect(
                chans["b_bv1"], chans["b_base1"], chans["c_bv1"], chans["c_base1"],
                ch("and1", "bv"), ch("wa1", "bv"), ch("ba1", "ref"),
                ch("wb1", "bv"), ch("bb1", "ref"), name="bv_and1",
            )
        )
        blocks.append(
            BVExpander(
                bits_per_word, chans["and1"], chans["wa1"], chans["ba1"],
                chans["wb1"], chans["bb1"], ch("crd1"), ch("refb1", "ref"),
                ch("refc1", "ref"), name="bv_expand1",
            )
        )
        ref_b, ref_c, crd_out = "refb1", "refc1", "crd1"
    else:
        ref_b, ref_c, crd_out = "refb0", "refc0", "crd0"

    blocks.append(ArrayLoad(vals_b, chans[ref_b], ch("b_val", "vals"), name="vals_b"))
    blocks.append(ArrayLoad(vals_c, chans[ref_c], ch("c_val", "vals"), name="vals_c"))
    blocks.append(ALU("mul", chans["b_val"], chans["c_val"], ch("x_val", "vals"), name="mul"))
    crd_writer = CompressedLevelWriter(chans[crd_out], name="write_crd")
    val_writer = ValsWriter(chans["x_val"], name="write_vals")
    blocks.extend([crd_writer, val_writer])
    report = run_blocks(blocks)
    config = "bv_split" if split else "bv"
    return VecMulResult(config, report.cycles, val_writer.vals, crd_writer.crd)


def vecmul(config: str, b, c, split: int = 64, bits_per_word: int = 64) -> VecMulResult:
    """Run one Figure 13 configuration of ``x(i) = b(i) * c(i)``."""
    if config not in CONFIGS:
        raise ValueError(f"unknown config {config!r}; choose from {CONFIGS}")
    if config in ("dense", "crd", "crd_split"):
        return _compiled_vecmul(config, b, c, split)
    if config == "crd_skip":
        return _skip_vecmul(b, c)
    return _bv_vecmul(b, c, bits_per_word, split=config == "bv_split")

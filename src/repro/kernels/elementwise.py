"""Element-wise sparse vector multiply kernels (paper Figure 13).

Six configurations of ``x(i) = b(i) * c(i)`` over size-2000 vectors,
matching section 6.3's accelerator-structure study:

* ``dense``      — one uncompressed level each (dense coiteration);
* ``crd``        — one compressed coordinate level (two-finger merge);
* ``crd_skip``   — compressed with coordinate skipping (galloping);
* ``crd_split``  — two compressed levels (the vector split into chunks);
* ``bv``         — one pseudo-dense bitvector level;
* ``bv_split``   — two bitvector levels (a bit-tree).

Each builder returns a :class:`VecMulResult` with the output values and
the simulated cycle count.  The compressed/dense/split variants are
compiled by Custard; the skip and bitvector variants are hand-wired
because they exercise blocks the compiler does not emit (skip channels,
bitvector mergers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    BVExpander,
    BVIntersect,
    BitvectorLevelScanner,
    CompressedLevelWriter,
    Intersect,
    MergeSide,
    RootFeeder,
    ValsWriter,
    make_scanner,
)
from ..formats import BitvectorLevel, FiberTensor
from ..graph.builder import Graph

CONFIGS = ("dense", "crd", "crd_skip", "crd_split", "bv", "bv_split")


@dataclass
class VecMulResult:
    """Output of one vector-multiply kernel run."""

    config: str
    cycles: int
    values: List[float]
    coords: List[int]

    def check_against(self, b: np.ndarray, c: np.ndarray) -> bool:
        """Compare nonzero products against the dense reference."""
        product = np.asarray(b) * np.asarray(c)
        expected = [v for v in product[product != 0]]
        got = [v for v in self.values if v != 0]
        return np.allclose(sorted(got), sorted(expected))


def _split_shape(size: int, split: int) -> tuple:
    if size % split:
        raise ValueError(f"split factor {split} must divide the size {size}")
    return (split, size // split)


def _compiled_vecmul(config: str, b, c, split: int,
                     backend: Optional[str] = None) -> VecMulResult:
    from ..lang import compile_expression

    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    if config == "dense":
        prog = compile_expression(
            "x(i) = b(i) * c(i)", formats={"b": ["dense"], "c": ["dense"]}
        )
        res = prog.run({"b": b, "c": c}, backend=backend)
    elif config == "crd":
        prog = compile_expression("x(i) = b(i) * c(i)")
        res = prog.run({"b": b, "c": c}, backend=backend)
    elif config == "crd_split":
        shape = _split_shape(b.size, split)
        prog = compile_expression("x(i,j) = b(i,j) * c(i,j)")
        res = prog.run({"b": b.reshape(shape), "c": c.reshape(shape)},
                       backend=backend)
    else:  # pragma: no cover - guarded by vecmul()
        raise ValueError(config)
    out = res.output
    return VecMulResult(config, res.cycles, list(out.vals), [])


def _skip_vecmul(b, c, backend: Optional[str] = None) -> VecMulResult:
    """Compressed coiteration with the galloping feedback of section 4.2."""
    bt = FiberTensor.from_numpy(np.asarray(b, dtype=float), name="b")
    ct = FiberTensor.from_numpy(np.asarray(c, dtype=float), name="c")
    g = Graph("vecmul_crd_skip")

    for tensor, tag in ((bt, "b"), (ct, "c")):
        g.add(RootFeeder(g.out(f"{tag}_root", "ref"), name=f"root_{tag}"))
        # The skip stream flows backwards (merger -> scanner) through the
        # merger's side-band port, so it is forward-referenced here and
        # exempted from the producerless-stream check.
        g.add(
            make_scanner(
                tensor.levels[0],
                g.in_(f"{tag}_root"),
                g.out(f"{tag}_crd"),
                g.out(f"{tag}_ref", "ref"),
                in_skip=g.in_(f"{tag}_skip", kind="crd"),
                name=f"scan_{tag}",
            )
        )
        g.unused(f"{tag}_skip")
    g.add(
        Intersect(
            [
                MergeSide(g.in_("b_crd"), [g.in_("b_ref")], skip=g.in_("b_skip")),
                MergeSide(g.in_("c_crd"), [g.in_("c_ref")], skip=g.in_("c_skip")),
            ],
            g.out("x_crd"),
            [[g.out("xb_ref", "ref")], [g.out("xc_ref", "ref")]],
            name="intersect_i",
        )
    )
    g.add(ArrayLoad(bt.vals, g.in_("xb_ref"), g.out("b_val", "vals"), name="vals_b"))
    g.add(ArrayLoad(ct.vals, g.in_("xc_ref"), g.out("c_val", "vals"), name="vals_c"))
    g.add(ALU("mul", g.in_("b_val"), g.in_("c_val"), g.out("x_val", "vals"), name="mul"))
    crd_writer = g.add(CompressedLevelWriter(g.in_("x_crd"), name="write_crd"))
    val_writer = g.add(ValsWriter(g.in_("x_val"), name="write_vals"))
    report = g.run(backend=backend)
    return VecMulResult("crd_skip", report.cycles, val_writer.vals, crd_writer.crd)


def _bv_chain(tag: str, levels: Sequence[BitvectorLevel], g: Graph):
    """Wire root -> bitvector scanners for one operand; returns port names."""
    g.add(RootFeeder(g.out(f"{tag}_root", "ref"), name=f"root_{tag}"))
    upstream = f"{tag}_root"
    for depth, level in enumerate(levels):
        g.add(
            BitvectorLevelScanner(
                level,
                g[upstream],
                g.out(f"{tag}_bv{depth}", "bv"),
                g.out(f"{tag}_base{depth}", "ref"),
                name=f"bvscan_{tag}{depth}",
            )
        )
        upstream = f"{tag}_base{depth}"
    return upstream


def _bv_vecmul(b, c, bits_per_word: int, split: bool,
               backend: Optional[str] = None) -> VecMulResult:
    """Bitvector (and bit-tree) element-wise multiply."""
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    size = b.size
    g = Graph("vecmul_bv_split" if split else "vecmul_bv")

    def build_levels(vec) -> tuple:
        coords = [int(i) for i in np.flatnonzero(vec)]
        if not split:
            level = BitvectorLevel.from_fibers([coords], size, bits_per_word)
            return [level], list(vec[np.flatnonzero(vec)])
        # Bit-tree: an upper level marks which lower words are nonempty;
        # the lower level stores only the nonempty words (one per fiber).
        num_words = -(-size // bits_per_word)
        by_word: dict = {}
        for crd in coords:
            by_word.setdefault(crd // bits_per_word, []).append(crd % bits_per_word)
        nonzero_words = sorted(by_word)
        upper = BitvectorLevel.from_fibers([nonzero_words], num_words, bits_per_word)
        lower = BitvectorLevel.from_fibers(
            [by_word[w] for w in nonzero_words], bits_per_word, bits_per_word
        )
        return [upper, lower], list(vec[np.flatnonzero(vec)])

    levels_b, vals_b = build_levels(b)
    levels_c, vals_c = build_levels(c)

    # Upper (or only) level: scan + word-wise AND.
    last_b = _bv_chain("b", levels_b[:1], g)
    last_c = _bv_chain("c", levels_c[:1], g)
    g.add(
        BVIntersect(
            g.in_("b_bv0"), g[last_b], g.in_("c_bv0"), g[last_c],
            g.out("and0", "bv"), g.out("wa0", "bv"), g.out("ba0", "ref"),
            g.out("wb0", "bv"), g.out("bb0", "ref"), name="bv_and0",
        )
    )
    g.add(
        BVExpander(
            bits_per_word, g.in_("and0"), g.in_("wa0"), g.in_("ba0"),
            g.in_("wb0"), g.in_("bb0"), g.out("crd0"), g.out("refb0", "ref"),
            g.out("refc0", "ref"), name="bv_expand0",
        )
    )
    if split:
        # Lower level: scan the surviving words and AND again.
        g.add(
            BitvectorLevelScanner(
                levels_b[1], g.in_("refb0"), g.out("b_bv1", "bv"), g.out("b_base1", "ref"),
                name="bvscan_b1",
            )
        )
        g.add(
            BitvectorLevelScanner(
                levels_c[1], g.in_("refc0"), g.out("c_bv1", "bv"), g.out("c_base1", "ref"),
                name="bvscan_c1",
            )
        )
        g.add(
            BVIntersect(
                g.in_("b_bv1"), g.in_("b_base1"), g.in_("c_bv1"), g.in_("c_base1"),
                g.out("and1", "bv"), g.out("wa1", "bv"), g.out("ba1", "ref"),
                g.out("wb1", "bv"), g.out("bb1", "ref"), name="bv_and1",
            )
        )
        g.add(
            BVExpander(
                bits_per_word, g.in_("and1"), g.in_("wa1"), g.in_("ba1"),
                g.in_("wb1"), g.in_("bb1"), g.out("crd1"), g.out("refb1", "ref"),
                g.out("refc1", "ref"), name="bv_expand1",
            )
        )
        ref_b, ref_c, crd_out = "refb1", "refc1", "crd1"
        # Only the lower level's expanded coordinates reach the writer;
        # the upper expander's crd output exists for the non-split graph.
        g.unused("crd0")
    else:
        ref_b, ref_c, crd_out = "refb0", "refc0", "crd0"

    g.add(ArrayLoad(vals_b, g[ref_b], g.out("b_val", "vals"), name="vals_b"))
    g.add(ArrayLoad(vals_c, g[ref_c], g.out("c_val", "vals"), name="vals_c"))
    g.add(ALU("mul", g.in_("b_val"), g.in_("c_val"), g.out("x_val", "vals"), name="mul"))
    crd_writer = g.add(CompressedLevelWriter(g[crd_out], name="write_crd"))
    val_writer = g.add(ValsWriter(g.in_("x_val"), name="write_vals"))
    report = g.run(backend=backend)
    config = "bv_split" if split else "bv"
    return VecMulResult(config, report.cycles, val_writer.vals, crd_writer.crd)


def vecmul(
    config: str,
    b,
    c,
    split: int = 64,
    bits_per_word: int = 64,
    backend: Optional[str] = None,
) -> VecMulResult:
    """Run one Figure 13 configuration of ``x(i) = b(i) * c(i)``."""
    if config not in CONFIGS:
        raise ValueError(f"unknown config {config!r}; choose from {CONFIGS}")
    if config in ("dense", "crd", "crd_split"):
        return _compiled_vecmul(config, b, c, split, backend=backend)
    if config == "crd_skip":
        return _skip_vecmul(b, c, backend=backend)
    return _bv_vecmul(b, c, bits_per_word, split=config == "bv_split",
                      backend=backend)

"""Sparse matrix-vector multiply kernels.

Two variants of ``x(i) = B(i,j) * c(j)``:

* :func:`spmv_program` — the compiled coiteration graph (Table 1's SpMV
  row: the j-level intersecter co-iterates B's rows with c);
* :func:`spmv_locate` — the iterate-locate variant of section 4.2 for a
  dense vector: B's row coordinates probe c directly through a locator,
  never streaming c's coordinates at all;
* :func:`spmv_scatter` — the linear-combination-of-rows transposed
  matrix-vector product ``x(j) = sum_i B(i,j) * c(i)``, scattering
  partial products directly into a dense result that supports random
  insert — section 4.2's "the linear combination of rows matrix-vector
  multiplication can avoid a vector reducer".
"""

from __future__ import annotations

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    CompressedLevelWriter,
    Fanout,
    Intersect,
    Locator,
    MergeSide,
    RootFeeder,
    ScalarReducer,
    ScatterValsWriter,
    ValsWriter,
    ValueDropper,
    make_repeater,
    make_scanner,
)
from ..formats import DenseLevel, FiberTensor
from ..lang import CompiledProgram, compile_expression
from ..sim.engine import run_blocks
from ..streams.channel import Channel


def spmv_program() -> CompiledProgram:
    """The compiled (coiterating) SpMV graph."""
    return compile_expression("x(i) = B(i,j) * c(j)")


def spmv_locate(B: np.ndarray, c: np.ndarray):
    """Iterate-locate SpMV: stream B's nonzeros, probe the dense vector c.

    Returns ``(x_coords, x_values, cycles)``.
    """
    B = np.asarray(B, dtype=float)
    c = np.asarray(c, dtype=float)
    bt = FiberTensor.from_numpy(B, name="B")
    c_level = DenseLevel(c.size)
    blocks = []
    chans = {}

    def ch(name, kind="crd"):
        chans[name] = Channel(name, kind=kind)
        return chans[name]

    blocks.append(RootFeeder(ch("root", "ref"), name="root_B"))
    blocks.append(
        make_scanner(bt.levels[0], chans["root"], ch("bi_crd"), ch("bi_ref", "ref"),
                     name="scan_Bi")
    )
    blocks.append(
        make_scanner(bt.levels[1], chans["bi_ref"], ch("bj_crd"), ch("bj_ref", "ref"),
                     name="scan_Bj")
    )
    # Locator probes c's dense level with B's j coordinates (always hits
    # in-bounds coordinates; the point is never iterating c).
    blocks.append(
        Locator(
            c_level, chans["bj_crd"], chans["bj_ref"],
            ch("loc_crd"), ch("c_ref", "ref"), ch("b_ref", "ref"),
            name="locate_c",
        )
    )
    blocks.append(ArrayLoad(bt.vals, chans["b_ref"], ch("b_val", "vals"), name="vals_B"))
    blocks.append(ArrayLoad(list(c), chans["c_ref"], ch("c_val", "vals"), name="vals_c"))
    blocks.append(ALU("mul", chans["b_val"], chans["c_val"], ch("prod", "vals"), name="mul"))
    blocks.append(ScalarReducer(chans["prod"], ch("sum", "vals"), name="reduce_j"))
    blocks.append(
        ValueDropper(chans["bi_crd"], chans["sum"], ch("x_crd"), ch("x_val", "vals"),
                     name="drop_zero")
    )
    crd_writer = CompressedLevelWriter(chans["x_crd"], name="write_x_i")
    val_writer = ValsWriter(chans["x_val"], name="write_x_vals")
    blocks.extend([crd_writer, val_writer])
    report = run_blocks(blocks)
    return crd_writer.crd, val_writer.vals, report.cycles


def spmv_scatter(B: np.ndarray, c: np.ndarray):
    """Linear-combination SpMV scattering into a dense result (section 4.2).

    Computes ``x(j) = sum_i B(i,j) * c(i)`` by intersecting B's rows with
    c's coordinates, broadcasting each surviving ``c_i`` over B's row
    fiber, and scatter-adding the partial products at their j coordinates
    into a dense value array — no vector reducer required.

    Returns ``(x_dense, cycles)``.
    """
    B = np.asarray(B, dtype=float)
    c = np.asarray(c, dtype=float)
    bt = FiberTensor.from_numpy(B, name="B")
    ct = FiberTensor.from_numpy(c, name="c")
    blocks = []
    chans = {}

    def ch(name, kind="crd"):
        chans[name] = Channel(name, kind=kind)
        return chans[name]

    blocks.append(RootFeeder(ch("b_root", "ref"), name="root_B"))
    blocks.append(RootFeeder(ch("c_root", "ref"), name="root_c"))
    blocks.append(
        make_scanner(bt.levels[0], chans["b_root"], ch("bi_crd"), ch("bi_ref", "ref"),
                     name="scan_Bi")
    )
    blocks.append(
        make_scanner(ct.levels[0], chans["c_root"], ch("ci_crd"), ch("ci_ref", "ref"),
                     name="scan_ci")
    )
    blocks.append(
        Intersect(
            [MergeSide(chans["bi_crd"], [chans["bi_ref"]]),
             MergeSide(chans["ci_crd"], [chans["ci_ref"]])],
            ch("i_crd"), [[ch("ib_ref", "ref")], [ch("ic_ref", "ref")]],
            name="intersect_i",
        )
    )
    blocks.append(
        make_scanner(bt.levels[1], chans["ib_ref"], ch("bj_crd"), ch("bj_ref", "ref"),
                     name="scan_Bj")
    )
    blocks.append(Fanout(chans["bj_crd"], [ch("bj_rep"), ch("bj_scatter")],
                         name="fan_bj"))
    # Broadcast the surviving c reference over B's row fiber (Figure 6).
    blocks.extend(make_repeater(chans["bj_rep"], chans["ic_ref"],
                                ch("c_rep", "ref"), name="repeat_cj"))
    blocks.append(ArrayLoad(bt.vals, chans["bj_ref"], ch("b_val", "vals"),
                            name="vals_B"))
    blocks.append(ArrayLoad(ct.vals, chans["c_rep"], ch("c_val", "vals"),
                            name="vals_c"))
    blocks.append(ALU("mul", chans["b_val"], chans["c_val"], ch("prod", "vals"),
                      name="mul"))
    # Scatter-add at the j coordinate: the dense result supports random
    # insert, so the reduction happens in memory.
    scatter = ScatterValsWriter(B.shape[1], chans["bj_scatter"],
                                chans["prod"], name="scatter_x")
    blocks.append(scatter)
    report = run_blocks(blocks)
    return np.array(scatter.vals), report.cycles

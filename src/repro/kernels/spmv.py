"""Sparse matrix-vector multiply kernels.

Two variants of ``x(i) = B(i,j) * c(j)``:

* :func:`spmv_program` — the compiled coiteration graph (Table 1's SpMV
  row: the j-level intersecter co-iterates B's rows with c);
* :func:`spmv_locate` — the iterate-locate variant of section 4.2 for a
  dense vector: B's row coordinates probe c directly through a locator,
  never streaming c's coordinates at all;
* :func:`spmv_scatter` — the linear-combination-of-rows transposed
  matrix-vector product ``x(j) = sum_i B(i,j) * c(i)``, scattering
  partial products directly into a dense result that supports random
  insert — section 4.2's "the linear combination of rows matrix-vector
  multiplication can avoid a vector reducer".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    CompressedLevelWriter,
    Fanout,
    Intersect,
    Locator,
    MergeSide,
    RootFeeder,
    ScalarReducer,
    ScatterValsWriter,
    ValsWriter,
    ValueDropper,
    make_repeater,
    make_scanner,
)
from ..formats import DenseLevel, FiberTensor
from ..graph.builder import Graph
from ..lang import CompiledProgram, compile_expression


def spmv_program() -> CompiledProgram:
    """The compiled (coiterating) SpMV graph."""
    return compile_expression("x(i) = B(i,j) * c(j)")


def spmv_locate(B, c: np.ndarray, backend: Optional[str] = None):
    """Iterate-locate SpMV: stream B's nonzeros, probe the dense vector c.

    ``B`` may be a dense numpy matrix or a prebuilt two-level
    :class:`FiberTensor` (the path large ``.mtx``-ingested operands take,
    where densifying first would not fit in memory).
    Returns ``(x_coords, x_values, cycles)``.
    """
    c = np.asarray(c, dtype=float)
    if isinstance(B, FiberTensor):
        bt = B
    else:
        bt = FiberTensor.from_numpy(np.asarray(B, dtype=float), name="B")
    if bt.order != 2:
        raise ValueError(f"spmv_locate needs a matrix, got order {bt.order}")
    if bt.mode_order != (0, 1):
        # The graph scans storage levels as (row, column); transposed
        # storage would silently compute B.T @ c.
        raise ValueError(
            f"spmv_locate requires row-major storage (mode_order (0, 1)), "
            f"got mode_order {bt.mode_order}"
        )
    # The locator probes c with storage level 1's coordinates; a short c
    # would silently drop every j >= c.size (DenseLevel.locate misses).
    if bt.shape[1] != c.size:
        raise ValueError(
            f"B's scanned column dimension is {bt.shape[1]} but c has "
            f"{c.size} entries"
        )
    c_level = DenseLevel(c.size)
    g = Graph("spmv_locate")

    g.add(RootFeeder(g.out("root", "ref"), name="root_B"))
    g.add(
        make_scanner(bt.levels[0], g.in_("root"),
                     g.out("bi_crd"), g.out("bi_ref", "ref"), name="scan_Bi")
    )
    g.add(
        make_scanner(bt.levels[1], g.in_("bi_ref"),
                     g.out("bj_crd"), g.out("bj_ref", "ref"), name="scan_Bj")
    )
    # Locator probes c's dense level with B's j coordinates (always hits
    # in-bounds coordinates; the point is never iterating c).
    g.add(
        Locator(
            c_level, g.in_("bj_crd"), g.in_("bj_ref"),
            g.out("loc_crd"), g.out("c_ref", "ref"), g.out("b_ref", "ref"),
            name="locate_c",
        )
    )
    # A dense-level locate always hits, so the located coordinates
    # duplicate bj_crd and nothing downstream reads them.
    g.unused("loc_crd")
    g.add(ArrayLoad(bt.vals, g.in_("b_ref"), g.out("b_val", "vals"),
                    name="vals_B"))
    # Pass c as an array: ArrayLoad snapshots list memories with
    # np.asarray on every run, which at benchmark scale costs more than
    # the gather itself.
    g.add(ArrayLoad(c, g.in_("c_ref"), g.out("c_val", "vals"), name="vals_c"))
    g.add(ALU("mul", g.in_("b_val"), g.in_("c_val"), g.out("prod", "vals"),
              name="mul"))
    g.add(ScalarReducer(g.in_("prod"), g.out("sum", "vals"), name="reduce_j"))
    g.add(
        ValueDropper(g.in_("bi_crd"), g.in_("sum"),
                     g.out("x_crd"), g.out("x_val", "vals"), name="drop_zero")
    )
    crd_writer = g.add(CompressedLevelWriter(g.in_("x_crd"), name="write_x_i"))
    val_writer = g.add(ValsWriter(g.in_("x_val"), name="write_x_vals"))
    report = g.run(backend=backend)
    return crd_writer.crd, val_writer.vals, report.cycles


def spmv_scatter(B: np.ndarray, c: np.ndarray, backend: Optional[str] = None):
    """Linear-combination SpMV scattering into a dense result (section 4.2).

    Computes ``x(j) = sum_i B(i,j) * c(i)`` by intersecting B's rows with
    c's coordinates, broadcasting each surviving ``c_i`` over B's row
    fiber, and scatter-adding the partial products at their j coordinates
    into a dense value array — no vector reducer required.

    Returns ``(x_dense, cycles)``.
    """
    B = np.asarray(B, dtype=float)
    c = np.asarray(c, dtype=float)
    bt = FiberTensor.from_numpy(B, name="B")
    ct = FiberTensor.from_numpy(c, name="c")
    g = Graph("spmv_scatter")

    g.add(RootFeeder(g.out("b_root", "ref"), name="root_B"))
    g.add(RootFeeder(g.out("c_root", "ref"), name="root_c"))
    g.add(
        make_scanner(bt.levels[0], g.in_("b_root"),
                     g.out("bi_crd"), g.out("bi_ref", "ref"), name="scan_Bi")
    )
    g.add(
        make_scanner(ct.levels[0], g.in_("c_root"),
                     g.out("ci_crd"), g.out("ci_ref", "ref"), name="scan_ci")
    )
    g.add(
        Intersect(
            [MergeSide(g.in_("bi_crd"), [g.in_("bi_ref")]),
             MergeSide(g.in_("ci_crd"), [g.in_("ci_ref")])],
            g.out("i_crd"),
            [[g.out("ib_ref", "ref")], [g.out("ic_ref", "ref")]],
            name="intersect_i",
        )
    )
    # Only the surviving references matter; the intersected row
    # coordinate itself is never consumed (the scatter target is j).
    g.unused("i_crd")
    g.add(
        make_scanner(bt.levels[1], g.in_("ib_ref"),
                     g.out("bj_crd"), g.out("bj_ref", "ref"), name="scan_Bj")
    )
    g.add(Fanout(g.in_("bj_crd"), [g.out("bj_rep"), g.out("bj_scatter")],
                 name="fan_bj"))
    # Broadcast the surviving c reference over B's row fiber (Figure 6).
    g.add_all(make_repeater(g.in_("bj_rep"), g.in_("ic_ref"),
                            g.out("c_rep", "ref"), name="repeat_cj"))
    g.add(ArrayLoad(bt.vals, g.in_("bj_ref"), g.out("b_val", "vals"),
                    name="vals_B"))
    g.add(ArrayLoad(ct.vals, g.in_("c_rep"), g.out("c_val", "vals"),
                    name="vals_c"))
    g.add(ALU("mul", g.in_("b_val"), g.in_("c_val"), g.out("prod", "vals"),
              name="mul"))
    # Scatter-add at the j coordinate: the dense result supports random
    # insert, so the reduction happens in memory.
    scatter = g.add(ScatterValsWriter(B.shape[1], g.in_("bj_scatter"),
                                      g.in_("prod"), name="scatter_x"))
    report = g.run(backend=backend)
    return np.array(scatter.vals), report.cycles

"""Curated SAM kernels used by the paper's evaluation studies."""

from .elementwise import CONFIGS, VecMulResult, vecmul
from .gamma import GammaResult, gamma_spmm
from .outerspace import OuterSpaceResult, outerspace_spmm
from .sddmm import (
    SDDMMResult,
    sddmm_fused_coiter,
    sddmm_fused_locate,
    sddmm_reference,
    sddmm_unfused,
)
from .spmm import FAMILY, ORDERS, run_spmm, spmm_all_orders, spmm_program
from .spmv import spmv_locate, spmv_program, spmv_scatter

__all__ = [
    "CONFIGS",
    "FAMILY",
    "GammaResult",
    "ORDERS",
    "OuterSpaceResult",
    "SDDMMResult",
    "VecMulResult",
    "gamma_spmm",
    "outerspace_spmm",
    "run_spmm",
    "sddmm_fused_coiter",
    "sddmm_fused_locate",
    "sddmm_reference",
    "sddmm_unfused",
    "spmm_all_orders",
    "spmm_program",
    "spmv_locate",
    "spmv_scatter",
    "spmv_program",
    "vecmul",
]

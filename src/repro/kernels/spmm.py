"""Sparse matrix multiply (SpM*SpM) kernels in all six dataflow orders.

Section 6.3's dataflow-ordering study (Figure 12): the index-variable
order determines the algorithm —

* ``ijk`` / ``jik`` — inner product (SIGMA-style), poor asymptotics;
* ``ikj`` / ``jki`` — linear combination of rows (Gustavson / GAMMA);
* ``kij`` / ``kji`` — outer product (OuterSPACE-style).

Each order needs operand storage orders compatible with the dataflow, so
the kernels choose the mode orders automatically (e.g. the outer product
reads ``B`` column-major), exactly as the paper's DCSR assumption allows.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..lang import CompiledProgram, RunResult, compile_expression

ORDERS = ("ijk", "jik", "ikj", "jki", "kij", "kji")

#: human names for the three dataflow families
FAMILY = {
    "ijk": "inner product",
    "jik": "inner product",
    "ikj": "linear combination of rows",
    "jki": "linear combination of rows",
    "kij": "outer product",
    "kji": "outer product",
}


def spmm_program(order: str = "ikj") -> CompiledProgram:
    """Compile ``X(i,j) = B(i,k) * C(k,j)`` for one dataflow order."""
    if order not in ORDERS:
        raise ValueError(f"unknown order {order!r}; choose from {ORDERS}")
    pos = {var: i for i, var in enumerate(order)}
    formats: Dict = {
        "B": (["compressed", "compressed"], (0, 1) if pos["i"] < pos["k"] else (1, 0)),
        "C": (["compressed", "compressed"], (0, 1) if pos["k"] < pos["j"] else (1, 0)),
    }
    return compile_expression(
        "X(i,j) = B(i,k) * C(k,j)", formats=formats, schedule=tuple(order)
    )


def run_spmm(
    B: np.ndarray,
    C: np.ndarray,
    order: str = "ikj",
    backend: Optional[str] = None,
) -> RunResult:
    """Simulate SpM*SpM for one dataflow order on dense numpy operands."""
    return spmm_program(order).run(
        {"B": np.asarray(B, float), "C": np.asarray(C, float)}, backend=backend
    )


def spmm_all_orders(
    B: np.ndarray, C: np.ndarray, backend: Optional[str] = None
) -> Dict[str, Tuple[int, RunResult]]:
    """Figure 12: cycles for every ijk permutation."""
    results = {}
    for order in ORDERS:
        result = run_spmm(B, C, order, backend=backend)
        results[order] = (result.cycles, result)
    return results

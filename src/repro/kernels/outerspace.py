"""OuterSPACE-style two-phase SpM*SpM (paper section 6.5, Figure 16).

OuterSPACE factorizes sparse matrix multiply into a *multiply phase*
``Y(i,k,j) = B(i,k) * C(k,j)`` computed in outer-product (k, i, j) order,
and a *merge phase* ``X(i,j) = sum_k Y(i,k,j)``.  The multiply phase's
write of Y is discordant — produced in k-major order, stored in i-major
order — which the linked-list level format absorbs: each k entry is
appended under its i fiber as it arrives.

The merge phase re-reads Y concordantly (uncompressed i level,
linked-list k level, compressed j level), sums over k with a vector
reducer, and writes DCSR X.  This mirrors Figure 16 plus the merge
dataflow described in the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    CompressedLevelWriter,
    CoordDropper,
    Fanout,
    Intersect,
    LinkedListLevelWriter,
    MergeSide,
    RootFeeder,
    ValsWriter,
    VectorReducer,
    make_repeater,
    make_scanner,
)
from ..formats import DenseLevel, FiberTensor
from ..graph.builder import Graph


@dataclass
class OuterSpaceResult:
    output: np.ndarray
    multiply_cycles: int
    merge_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.multiply_cycles + self.merge_cycles


def outerspace_spmm(
    B: np.ndarray, C: np.ndarray, backend: Optional[str] = None
) -> OuterSpaceResult:
    """Run the two OuterSPACE phases; returns X and per-phase cycles."""
    B = np.asarray(B, dtype=float)
    C = np.asarray(C, dtype=float)
    num_rows = B.shape[0]
    # B column-major (k outer), C row-major (k outer) for the outer product.
    bt = FiberTensor.from_numpy(B, mode_order=(1, 0), name="B")
    ct = FiberTensor.from_numpy(C, name="C")

    # ---- multiply phase: Y(i,k,j) = B(i,k) * C(k,j) in k,i,j order -------
    g = Graph("outerspace_multiply")

    g.add(RootFeeder(g.out("b_root", "ref"), name="root_B"))
    g.add(RootFeeder(g.out("c_root", "ref"), name="root_C"))
    g.add(
        make_scanner(bt.levels[0], g.in_("b_root"), g.out("bk_crd"), g.out("bk_ref", "ref"),
                     name="scan_Bk")
    )
    g.add(
        make_scanner(ct.levels[0], g.in_("c_root"), g.out("ck_crd"), g.out("ck_ref", "ref"),
                     name="scan_Ck")
    )
    g.add(
        Intersect(
            [MergeSide(g.in_("bk_crd"), [g.in_("bk_ref")]),
             MergeSide(g.in_("ck_crd"), [g.in_("ck_ref")])],
            g.out("k_crd"), [[g.out("kb_ref", "ref")], [g.out("kc_ref", "ref")]],
            name="intersect_k",
        )
    )
    g.add(
        make_scanner(bt.levels[1], g.in_("kb_ref"), g.out("bi_crd"), g.out("bi_ref", "ref"),
                     name="scan_Bi")
    )
    g.add(Fanout(g.in_("bi_crd"), [g.out("bi_crd_rep"), g.out("bi_crd_wr"),
                               g.out("bi_crd_krep")], name="fan_bi"))
    # Repeat C's surviving k reference over each i of B's column (Fig. 16
    # "Repeater Ci"), then scan C's j fibers once per i.
    g.add_all(make_repeater(g.in_("bi_crd_rep"), g.in_("kc_ref"),
                            g.out("ci_rep", "ref"), name="repeat_Ci"))
    g.add(
        make_scanner(ct.levels[1], g.in_("ci_rep"), g.out("cj_crd"), g.out("cj_ref", "ref"),
                     name="scan_Cj")
    )
    g.add(Fanout(g.in_("cj_crd"), [g.out("cj_crd_rep"), g.out("cj_crd_wr")],
                 name="fan_cj"))
    # Repeat B's value reference over each j (Fig. 16 "Repeater Bj").
    g.add_all(make_repeater(g.in_("cj_crd_rep"), g.in_("bi_ref"),
                            g.out("bj_rep", "ref"), name="repeat_Bj"))
    g.add(ArrayLoad(bt.vals, g.in_("bj_rep"), g.out("b_val", "vals"), name="vals_B"))
    g.add(ArrayLoad(ct.vals, g.in_("cj_ref"), g.out("c_val", "vals"), name="vals_C"))
    g.add(ALU("mul", g.in_("b_val"), g.in_("c_val"), g.out("y_val", "vals"), name="mul"))
    # Discordant write of Y: k appended under its i fiber as it arrives.
    # The repeated payload is k *coordinates* (the repeater is
    # payload-polymorphic); the writer consumes them as a crd stream.
    g.add_all(make_repeater(g.in_("bi_crd_krep"), g.in_("k_crd"),
                            g.out("k_rep", "crd"), name="repeat_k_over_i"))
    # The writer pairs (parent, crd): parent = the i coordinate naming the
    # fiber, crd = the repeated k coordinate appended under it.
    ll_writer = g.add(LinkedListLevelWriter(g.in_("bi_crd_wr"), g.in_("k_rep"),
                                            name="write_Yk"))
    yj_writer = g.add(CompressedLevelWriter(g.in_("cj_crd_wr"), name="write_Yj"))
    yv_writer = g.add(ValsWriter(g.in_("y_val"), name="write_Yvals"))
    multiply_report = g.run(backend=backend)
    multiply_cycles = multiply_report.cycles

    # ---- merge phase: X(i,j) = sum_k Y(i,k,j) ---------------------------
    y_i_level = DenseLevel(num_rows, num_fibers=1)
    y_k_level = ll_writer.level
    y_k_level.ensure_fiber(num_rows - 1)
    y_j_level = yj_writer.level
    y_vals = yv_writer.vals

    g2 = Graph("outerspace_merge")

    g2.add(RootFeeder(g2.out("root", "ref"), name="root_Y"))
    g2.add(
        make_scanner(y_i_level, g2.in_("root"), g2.out("yi_crd"), g2.out("yi_ref", "ref"),
                     name="scan_Yi")
    )
    g2.add(
        make_scanner(y_k_level, g2.in_("yi_ref"), g2.out("yk_crd"), g2.out("yk_ref", "ref"),
                     name="scan_Yk")
    )
    g2.add(
        make_scanner(y_j_level, g2.in_("yk_ref"), g2.out("yj_crd"), g2.out("yj_ref", "ref"),
                     name="scan_Yj")
    )
    # The k coordinates themselves are summed away; only the fiber
    # references walk down to Y's j level.
    g2.unused("yk_crd")
    g2.add(ArrayLoad(y_vals, g2.in_("yj_ref"), g2.out("y_val", "vals"), name="vals_Y"))
    g2.add(
        VectorReducer(g2.in_("yj_crd"), g2.in_("y_val"), g2.out("xj_crd"),
                      g2.out("x_val", "vals"), name="reduce_k")
    )
    g2.add(
        CoordDropper(g2.in_("yi_crd"), g2.in_("xj_crd"), g2.out("xi_crd_d"),
                     g2.out("xj_crd_d"), name="drop_i")
    )
    xi_writer = g2.add(CompressedLevelWriter(g2.in_("xi_crd_d"), name="write_Xi"))
    xj_writer = g2.add(CompressedLevelWriter(g2.in_("xj_crd_d"), name="write_Xj"))
    xv_writer = g2.add(ValsWriter(g2.in_("x_val"), name="write_Xvals"))
    merge_report = g2.run(backend=backend)

    x = FiberTensor(
        (B.shape[0], C.shape[1]),
        [xi_writer.level, xj_writer.level],
        xv_writer.vals,
        name="X",
    )
    return OuterSpaceResult(x.to_numpy(), multiply_cycles, merge_report.cycles)

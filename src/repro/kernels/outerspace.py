"""OuterSPACE-style two-phase SpM*SpM (paper section 6.5, Figure 16).

OuterSPACE factorizes sparse matrix multiply into a *multiply phase*
``Y(i,k,j) = B(i,k) * C(k,j)`` computed in outer-product (k, i, j) order,
and a *merge phase* ``X(i,j) = sum_k Y(i,k,j)``.  The multiply phase's
write of Y is discordant — produced in k-major order, stored in i-major
order — which the linked-list level format absorbs: each k entry is
appended under its i fiber as it arrives.

The merge phase re-reads Y concordantly (uncompressed i level,
linked-list k level, compressed j level), sums over k with a vector
reducer, and writes DCSR X.  This mirrors Figure 16 plus the merge
dataflow described in the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    CompressedLevelWriter,
    CoordDropper,
    Fanout,
    Intersect,
    LinkedListLevelWriter,
    MergeSide,
    RootFeeder,
    ValsWriter,
    VectorReducer,
    make_repeater,
    make_scanner,
)
from ..formats import DenseLevel, FiberTensor
from ..sim.engine import run_blocks
from ..streams.channel import Channel


@dataclass
class OuterSpaceResult:
    output: np.ndarray
    multiply_cycles: int
    merge_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.multiply_cycles + self.merge_cycles


def outerspace_spmm(B: np.ndarray, C: np.ndarray) -> OuterSpaceResult:
    """Run the two OuterSPACE phases; returns X and per-phase cycles."""
    B = np.asarray(B, dtype=float)
    C = np.asarray(C, dtype=float)
    num_rows = B.shape[0]
    # B column-major (k outer), C row-major (k outer) for the outer product.
    bt = FiberTensor.from_numpy(B, mode_order=(1, 0), name="B")
    ct = FiberTensor.from_numpy(C, name="C")

    # ---- multiply phase: Y(i,k,j) = B(i,k) * C(k,j) in k,i,j order -------
    blocks: List = []
    chans = {}

    def ch(name, kind="crd"):
        chans[name] = Channel(name, kind=kind)
        return chans[name]

    blocks.append(RootFeeder(ch("b_root", "ref"), name="root_B"))
    blocks.append(RootFeeder(ch("c_root", "ref"), name="root_C"))
    blocks.append(
        make_scanner(bt.levels[0], chans["b_root"], ch("bk_crd"), ch("bk_ref", "ref"),
                     name="scan_Bk")
    )
    blocks.append(
        make_scanner(ct.levels[0], chans["c_root"], ch("ck_crd"), ch("ck_ref", "ref"),
                     name="scan_Ck")
    )
    blocks.append(
        Intersect(
            [MergeSide(chans["bk_crd"], [chans["bk_ref"]]),
             MergeSide(chans["ck_crd"], [chans["ck_ref"]])],
            ch("k_crd"), [[ch("kb_ref", "ref")], [ch("kc_ref", "ref")]],
            name="intersect_k",
        )
    )
    blocks.append(
        make_scanner(bt.levels[1], chans["kb_ref"], ch("bi_crd"), ch("bi_ref", "ref"),
                     name="scan_Bi")
    )
    blocks.append(Fanout(chans["bi_crd"], [ch("bi_crd_rep"), ch("bi_crd_wr"),
                                           ch("bi_crd_krep")], name="fan_bi"))
    # Repeat C's surviving k reference over each i of B's column (Fig. 16
    # "Repeater Ci"), then scan C's j fibers once per i.
    blocks.extend(make_repeater(chans["bi_crd_rep"], chans["kc_ref"],
                                ch("ci_rep", "ref"), name="repeat_Ci"))
    blocks.append(
        make_scanner(ct.levels[1], chans["ci_rep"], ch("cj_crd"), ch("cj_ref", "ref"),
                     name="scan_Cj")
    )
    blocks.append(Fanout(chans["cj_crd"], [ch("cj_crd_rep"), ch("cj_crd_wr")],
                         name="fan_cj"))
    # Repeat B's value reference over each j (Fig. 16 "Repeater Bj").
    blocks.extend(make_repeater(chans["cj_crd_rep"], chans["bi_ref"],
                                ch("bj_rep", "ref"), name="repeat_Bj"))
    blocks.append(ArrayLoad(bt.vals, chans["bj_rep"], ch("b_val", "vals"), name="vals_B"))
    blocks.append(ArrayLoad(ct.vals, chans["cj_ref"], ch("c_val", "vals"), name="vals_C"))
    blocks.append(ALU("mul", chans["b_val"], chans["c_val"], ch("y_val", "vals"),
                      name="mul"))
    # Discordant write of Y: k appended under its i fiber as it arrives.
    blocks.extend(make_repeater(chans["bi_crd_krep"], chans["k_crd"],
                                ch("k_rep", "ref"), name="repeat_k_over_i"))
    # The writer pairs (parent, crd): parent = the i coordinate naming the
    # fiber, crd = the repeated k coordinate appended under it.
    ll_writer = LinkedListLevelWriter(chans["bi_crd_wr"], chans["k_rep"], name="write_Yk")
    yj_writer = CompressedLevelWriter(chans["cj_crd_wr"], name="write_Yj")
    yv_writer = ValsWriter(chans["y_val"], name="write_Yvals")
    blocks.extend([ll_writer, yj_writer, yv_writer])
    multiply_report = run_blocks(blocks)
    multiply_cycles = multiply_report.cycles

    # ---- merge phase: X(i,j) = sum_k Y(i,k,j) ---------------------------
    y_i_level = DenseLevel(num_rows, num_fibers=1)
    y_k_level = ll_writer.level
    y_k_level.ensure_fiber(num_rows - 1)
    y_j_level = yj_writer.level
    y_vals = yv_writer.vals

    blocks2: List = []
    chans2 = {}

    def ch2(name, kind="crd"):
        chans2[name] = Channel(name, kind=kind)
        return chans2[name]

    blocks2.append(RootFeeder(ch2("root", "ref"), name="root_Y"))
    blocks2.append(
        make_scanner(y_i_level, chans2["root"], ch2("yi_crd"), ch2("yi_ref", "ref"),
                     name="scan_Yi")
    )
    blocks2.append(
        make_scanner(y_k_level, chans2["yi_ref"], ch2("yk_crd"), ch2("yk_ref", "ref"),
                     name="scan_Yk")
    )
    blocks2.append(
        make_scanner(y_j_level, chans2["yk_ref"], ch2("yj_crd"), ch2("yj_ref", "ref"),
                     name="scan_Yj")
    )
    blocks2.append(ArrayLoad(y_vals, chans2["yj_ref"], ch2("y_val", "vals"),
                             name="vals_Y"))
    blocks2.append(
        VectorReducer(chans2["yj_crd"], chans2["y_val"], ch2("xj_crd"),
                      ch2("x_val", "vals"), name="reduce_k")
    )
    blocks2.append(
        CoordDropper(chans2["yi_crd"], chans2["xj_crd"], ch2("xi_crd_d"),
                     ch2("xj_crd_d"), name="drop_i")
    )
    xi_writer = CompressedLevelWriter(chans2["xi_crd_d"], name="write_Xi")
    xj_writer = CompressedLevelWriter(chans2["xj_crd_d"], name="write_Xj")
    xv_writer = ValsWriter(chans2["x_val"], name="write_Xvals")
    blocks2.extend([xi_writer, xj_writer, xv_writer])
    merge_report = run_blocks(blocks2)

    x = FiberTensor(
        (B.shape[0], C.shape[1]),
        [xi_writer.level, xj_writer.level],
        xv_writer.vals,
        name="X",
    )
    return OuterSpaceResult(x.to_numpy(), multiply_cycles, merge_report.cycles)

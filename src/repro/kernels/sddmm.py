"""SDDMM kernels: the fusion study of Figure 11.

Sampled dense-dense matrix multiplication,
``X(i,j) = sum_k B(i,j) * C(i,k) * D(j,k)`` with sparse B and dense C, D,
in three implementations:

* :func:`sddmm_unfused` — factorized: first the full dense contraction
  ``T(i,j) = C(i,k) * D(j,k)``, then the element-wise sample
  ``X = B * T`` (what fixed-function matmul hardware forces); cycles are
  the sum of the two phases;
* :func:`sddmm_fused_coiter` — the fused compiled graph; the sparsity of
  B gates all computation, but i and j are merged by coiterating B with
  C's and D's dense levels;
* :func:`sddmm_fused_locate` — fused with locators (section 4.2): B's
  coordinates probe the dense operands directly, skipping the dense
  coiteration entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..formats import FiberTensor
from ..graph.bind import bind
from ..graph.ir import SamGraph
from ..lang import compile_expression


@dataclass
class SDDMMResult:
    output: np.ndarray
    cycles: int
    variant: str


def _as_arrays(B, C, D):
    return (np.asarray(B, float), np.asarray(C, float), np.asarray(D, float))


def sddmm_reference(B, C, D) -> np.ndarray:
    B, C, D = _as_arrays(B, C, D)
    return B * (C @ D.T)


def sddmm_unfused(B, C, D, backend: Optional[str] = None) -> SDDMMResult:
    """Factorized SDDMM: dense GEMM, then sparse element-wise sample."""
    B, C, D = _as_arrays(B, C, D)
    gemm = compile_expression(
        "T(i,j) = C(i,k) * D(j,k)",
        formats={"C": ["dense", "dense"], "D": ["dense", "dense"]},
        schedule=("i", "j", "k"),
    )
    first = gemm.run({"C": C, "D": D}, backend=backend)
    sample = compile_expression("X(i,j) = B(i,j) * T(i,j)")
    second = sample.run({"B": B, "T": first.output}, backend=backend)
    return SDDMMResult(second.to_numpy(), first.cycles + second.cycles, "unfused")


def sddmm_fused_coiter(B, C, D, backend: Optional[str] = None) -> SDDMMResult:
    """Fused SDDMM with dense coiteration at the sampled i and j levels."""
    B, C, D = _as_arrays(B, C, D)
    prog = compile_expression(
        "X(i,j) = B(i,j) * C(i,k) * D(j,k)",
        formats={"C": ["dense", "dense"], "D": ["dense", "dense"]},
        schedule=("i", "j", "k"),
    )
    res = prog.run({"B": B, "C": C, "D": D}, backend=backend)
    return SDDMMResult(res.to_numpy(), res.cycles, "fused_coiter")


def sddmm_fused_locate(B, C, D, backend: Optional[str] = None) -> SDDMMResult:
    """Fused SDDMM that locates into the dense operands (section 6.3).

    "We further enhance performance by using locator blocks to find the
    sampled i, j values, which is trivial in a dense array."
    """
    B, C, D = _as_arrays(B, C, D)
    bt = FiberTensor.from_numpy(B, name="B")
    ct = FiberTensor.from_numpy(C, formats=("dense", "dense"), name="C")
    dt = FiberTensor.from_numpy(D, formats=("dense", "dense"), name="D")

    g = SamGraph("sddmm_locate")
    root = g.add("root", name="root_B")
    scan_bi = g.add("level_scanner", name="scan_Bi", tensor="B", depth=0, var="i")
    scan_bj = g.add("level_scanner", name="scan_Bj", tensor="B", depth=1, var="j")
    g.connect(root, "ref", scan_bi, "ref", "ref")
    g.connect(scan_bi, "ref", scan_bj, "ref", "ref")
    # Probe C's dense i level with B's i coordinates.
    loc_c = g.add("locate", name="locate_Ci", tensor="C", depth=0)
    g.connect(scan_bi, "crd", loc_c, "crd", "crd")
    g.connect(scan_bi, "crd", loc_c, "ref", "ref")  # ref payload unused
    # Probe D's dense j level with B's j coordinates; ride B's value
    # references through the locator so they stay aligned.
    loc_d = g.add("locate", name="locate_Dj", tensor="D", depth=0)
    g.connect(scan_bj, "crd", loc_d, "crd", "crd")
    g.connect(scan_bj, "ref", loc_d, "ref", "ref")
    # Broadcast C's located row reference across each j fiber.
    rep_c = g.add("repeat", name="repeat_Ci_j", tensor="C", var="j")
    g.connect(loc_d, "crd", rep_c, "crd", "crd")
    g.connect(loc_c, "ref_found", rep_c, "ref", "ref")
    # Dense k levels of C and D.
    scan_ck = g.add("level_scanner", name="scan_Ck", tensor="C", depth=1, var="k")
    g.connect(rep_c, "ref", scan_ck, "ref", "ref")
    scan_dk = g.add("level_scanner", name="scan_Dk", tensor="D", depth=1, var="k")
    g.connect(loc_d, "ref_found", scan_dk, "ref", "ref")
    isect = g.add("intersect", name="intersect_k", sides=[1, 1], var="k")
    g.connect(scan_ck, "crd", isect, "crd0", "crd")
    g.connect(scan_ck, "ref", isect, "ref0_0", "ref")
    g.connect(scan_dk, "crd", isect, "crd1", "crd")
    g.connect(scan_dk, "ref", isect, "ref1_0", "ref")
    vals_c = g.add("array", name="vals_C", tensor="C")
    vals_d = g.add("array", name="vals_D", tensor="D")
    g.connect(isect, "ref0_0", vals_c, "ref", "ref")
    g.connect(isect, "ref1_0", vals_d, "ref", "ref")
    mul_cd = g.add("alu", name="mul_CD", op="mul")
    g.connect(vals_c, "val", mul_cd, "a", "vals")
    g.connect(vals_d, "val", mul_cd, "b", "vals")
    red = g.add("reduce", name="reduce_k", n=0, empty_policy="zero")
    g.connect(mul_cd, "val", red, "val", "vals")
    vals_b = g.add("array", name="vals_B", tensor="B")
    g.connect(loc_d, "ref_in", vals_b, "ref", "ref")
    mul_b = g.add("alu", name="mul_B", op="mul")
    g.connect(vals_b, "val", mul_b, "a", "vals")
    g.connect(red, "val", mul_b, "b", "vals")
    # Construction: drop zero samples, then empty i fibers.
    vdrop = g.add("crd_drop", name="valdrop_j", mode="value")
    g.connect(loc_d, "crd", vdrop, "outer", "crd")
    g.connect(mul_b, "val", vdrop, "inner", "vals")
    fdrop = g.add("crd_drop", name="crddrop_i_j", mode="fiber")
    g.connect(loc_c, "crd", fdrop, "outer", "crd")
    g.connect(vdrop, "outer", fdrop, "inner", "crd")
    wr_i = g.add("level_writer", name="write_X_i", format="compressed", var="i")
    wr_j = g.add("level_writer", name="write_X_j", format="compressed", var="j")
    wr_v = g.add("vals_writer", name="write_X_vals")
    g.connect(fdrop, "outer", wr_i, "crd", "crd")
    g.connect(fdrop, "inner", wr_j, "crd", "crd")
    g.connect(vdrop, "inner", wr_v, "val", "vals")
    g.validate()

    bound = bind(g, {"B": bt, "C": ct, "D": dt})
    report = bound.run(backend=backend)
    out = FiberTensor(
        B.shape,
        [bound.writers["write_X_i"].level, bound.writers["write_X_j"].level],
        bound.writers["write_X_vals"].vals,
        name="X",
    )
    return SDDMMResult(out.to_numpy(), report.cycles, "fused_locate")

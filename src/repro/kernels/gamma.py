"""Gamma-style parallelized SpM*SpM (paper sections 4.4 and 6.5).

"Gamma's dataflow is similar to Figure 4.  The main difference is that
Gamma adds a parallelizer ... and then uses a multi-input vector reducer
to rejoin the parallel threads."

This kernel distributes B's rows across L lanes with an element-
granularity parallelizer (each lane owns every L-th row), runs a
complete Gustavson pipeline per lane — scan B's k fiber, intersect with
C's k level, scan C's j fibers, multiply, vector-reduce — and rejoins
the per-row results with interleaving serializers feeding the shared
construction stage.  Per-block busy-cycle statistics expose the parallel
critical path, so lane scaling is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    CompressedLevelWriter,
    CoordDropper,
    Fanout,
    Intersect,
    InterleaveSerializer,
    MergeSide,
    Parallelizer,
    RootFeeder,
    ValsWriter,
    VectorReducer,
    make_repeater,
    make_scanner,
)
from ..formats import FiberTensor
from ..graph.builder import Graph


@dataclass
class GammaResult:
    output: np.ndarray
    cycles: int
    lanes: int
    #: busiest per-lane block's busy cycles — the parallel critical path
    critical_path: int


def gamma_spmm(
    B: np.ndarray,
    C: np.ndarray,
    lanes: int = 4,
    backend: Optional[str] = None,
) -> GammaResult:
    """Run Gustavson SpM*SpM with rows distributed across L lanes."""
    B = np.asarray(B, dtype=float)
    C = np.asarray(C, dtype=float)
    bt = FiberTensor.from_numpy(B, name="B")
    ct = FiberTensor.from_numpy(C, name="C")
    # A lane with zero rows would contribute a phantom empty region when
    # rejoined; clamp the lane count to the number of nonempty rows.
    nonempty_rows = bt.levels[0].fiber_size(0)
    lanes = max(1, min(lanes, nonempty_rows)) if nonempty_rows else 1

    def build_lane(lane: int) -> Graph:
        """One Gustavson lane as a validated subgraph.

        Open inputs: ``crd``/``ref`` (this lane's share of B's rows);
        open outputs: ``xj``/``xv`` (the lane's per-row results).  The
        enclosing graph fans rows in through a ``Parallelizer`` and
        rejoins the outputs with ``InterleaveSerializer``s.
        """
        p = f"l{lane}"
        lg = Graph(p)
        lane_crd = lg.in_("crd", kind="crd")
        lane_ref = lg.in_("ref", kind="ref")
        lg.add(RootFeeder(lg.out("croot", "ref"), name=f"root_C_{lane}"))
        lg.add_all(
            make_repeater(lane_crd, lg.in_("croot"),
                          lg.out("crep", "ref"), name=f"repeat_Ci_{lane}")
        )
        lg.add(
            make_scanner(bt.levels[1], lane_ref, lg.out("bk_crd"),
                         lg.out("bk_ref", "ref"), name=f"scan_Bk_{lane}")
        )
        lg.add(
            make_scanner(ct.levels[0], lg.in_("crep"), lg.out("ck_crd"),
                         lg.out("ck_ref", "ref"), name=f"scan_Ck_{lane}")
        )
        lg.add(
            Intersect(
                [MergeSide(lg.in_("bk_crd"), [lg.in_("bk_ref")]),
                 MergeSide(lg.in_("ck_crd"), [lg.in_("ck_ref")])],
                lg.out("k_crd"),
                [[lg.out("kb_ref", "ref")], [lg.out("kc_ref", "ref")]],
                name=f"intersect_k_{lane}",
            )
        )
        # Gustavson never needs the intersected k coordinate itself,
        # only the surviving fiber references.
        lg.unused("k_crd")
        lg.add(
            make_scanner(ct.levels[1], lg.in_("kc_ref"), lg.out("cj_crd"),
                         lg.out("cj_ref", "ref"), name=f"scan_Cj_{lane}")
        )
        lg.add(
            Fanout(lg.in_("cj_crd"), [lg.out("cj_rep"), lg.out("cj_red")],
                   name=f"fan_cj_{lane}")
        )
        lg.add_all(
            make_repeater(lg.in_("cj_rep"), lg.in_("kb_ref"),
                          lg.out("b_rep", "ref"), name=f"repeat_Bj_{lane}")
        )
        lg.add(ArrayLoad(bt.vals, lg.in_("b_rep"), lg.out("bval", "vals"),
                         name=f"vals_B_{lane}"))
        lg.add(ArrayLoad(ct.vals, lg.in_("cj_ref"), lg.out("cval", "vals"),
                         name=f"vals_C_{lane}"))
        lg.add(ALU("mul", lg.in_("bval"), lg.in_("cval"),
                   lg.out("prod", "vals"), name=f"mul_{lane}"))
        lg.add(
            VectorReducer(lg.in_("cj_red"), lg.in_("prod"),
                          lg.out("xj"), lg.out("xv", "vals"),
                          name=f"reduce_{lane}")
        )
        return lg

    # Each lane is a validated subgraph exposed as a composite node; its
    # open streams are the ports the PE array wires up below.
    lane_nodes = [build_lane(lane).as_node() for lane in range(lanes)]

    g = Graph("gamma_spmm")

    # Scan B's i level once and distribute rows across lanes.
    g.add(RootFeeder(g.out("b_root", "ref"), name="root_B"))
    g.add(
        make_scanner(bt.levels[0], g.in_("b_root"),
                     g.out("bi_crd"), g.out("bi_ref", "ref"), name="scan_Bi")
    )
    g.add(Fanout(g.in_("bi_crd"), [g.out("bi_par"), g.out("bi_wr")],
                 name="fan_bi"))
    g.add(
        Parallelizer(g.in_("bi_ref"), [n.input("ref") for n in lane_nodes],
                     granularity="element", name="par_ref")
    )
    g.add(
        Parallelizer(g.in_("bi_par"), [n.input("crd") for n in lane_nodes],
                     granularity="element", name="par_crd")
    )
    for lane, node in enumerate(lane_nodes):
        g.include(node, prefix=f"l{lane}")

    # Rejoin per-row results in original row order.
    g.add(InterleaveSerializer([n.output("xj") for n in lane_nodes],
                               g.out("xj_crd"), name="join_crd"))
    g.add(InterleaveSerializer([n.output("xv") for n in lane_nodes],
                               g.out("x_val", "vals"), name="join_val"))
    g.add(
        CoordDropper(g.in_("bi_wr"), g.in_("xj_crd"),
                     g.out("xi_d"), g.out("xj_d"), name="drop_i")
    )
    xi_writer = g.add(CompressedLevelWriter(g.in_("xi_d"), name="write_Xi"))
    xj_writer = g.add(CompressedLevelWriter(g.in_("xj_d"), name="write_Xj"))
    xv_writer = g.add(ValsWriter(g.in_("x_val"), name="write_Xvals"))

    report = g.run(backend=backend)
    x = FiberTensor(
        (B.shape[0], C.shape[1]),
        [xi_writer.level, xj_writer.level],
        xv_writer.vals,
        name="X",
    )
    critical = max(
        block.busy_cycles
        for block in g.blocks
        if block.name.startswith(("scan_Cj", "mul_", "scan_Bk", "reduce_"))
    )
    return GammaResult(x.to_numpy(), report.cycles, lanes, critical)

"""Gamma-style parallelized SpM*SpM (paper sections 4.4 and 6.5).

"Gamma's dataflow is similar to Figure 4.  The main difference is that
Gamma adds a parallelizer ... and then uses a multi-input vector reducer
to rejoin the parallel threads."

This kernel distributes B's rows across L lanes with an element-
granularity parallelizer (each lane owns every L-th row), runs a
complete Gustavson pipeline per lane — scan B's k fiber, intersect with
C's k level, scan C's j fibers, multiply, vector-reduce — and rejoins
the per-row results with interleaving serializers feeding the shared
construction stage.  Per-block busy-cycle statistics expose the parallel
critical path, so lane scaling is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    CompressedLevelWriter,
    CoordDropper,
    Fanout,
    Intersect,
    InterleaveSerializer,
    MergeSide,
    Parallelizer,
    RootFeeder,
    ValsWriter,
    VectorReducer,
    make_repeater,
    make_scanner,
)
from ..formats import FiberTensor
from ..graph.builder import GraphBuilder


@dataclass
class GammaResult:
    output: np.ndarray
    cycles: int
    lanes: int
    #: busiest per-lane block's busy cycles — the parallel critical path
    critical_path: int


def gamma_spmm(
    B: np.ndarray,
    C: np.ndarray,
    lanes: int = 4,
    backend: Optional[str] = None,
) -> GammaResult:
    """Run Gustavson SpM*SpM with rows distributed across L lanes."""
    B = np.asarray(B, dtype=float)
    C = np.asarray(C, dtype=float)
    bt = FiberTensor.from_numpy(B, name="B")
    ct = FiberTensor.from_numpy(C, name="C")
    # A lane with zero rows would contribute a phantom empty region when
    # rejoined; clamp the lane count to the number of nonempty rows.
    nonempty_rows = bt.levels[0].fiber_size(0)
    lanes = max(1, min(lanes, nonempty_rows)) if nonempty_rows else 1

    g = GraphBuilder("gamma_spmm")

    # Scan B's i level once and distribute rows across lanes.
    g.add(RootFeeder(g.ch("b_root", "ref"), name="root_B"))
    g.add(
        make_scanner(bt.levels[0], g["b_root"], g.ch("bi_crd"), g.ch("bi_ref", "ref"),
                     name="scan_Bi")
    )
    g.add(Fanout(g["bi_crd"], [g.ch("bi_par"), g.ch("bi_wr")], name="fan_bi"))
    lane_ref = [g.ch(f"l{l}_ref", "ref") for l in range(lanes)]
    lane_crd = [g.ch(f"l{l}_crd") for l in range(lanes)]
    g.add(
        Parallelizer(g["bi_ref"], lane_ref, granularity="element", name="par_ref")
    )
    g.add(
        Parallelizer(g["bi_par"], lane_crd, granularity="element", name="par_crd")
    )

    lane_xj, lane_xv = [], []
    for lane in range(lanes):
        p = f"l{lane}"
        g.add(RootFeeder(g.ch(f"{p}_croot", "ref"), name=f"root_C_{lane}"))
        g.add_all(
            make_repeater(lane_crd[lane], g[f"{p}_croot"],
                          g.ch(f"{p}_crep", "ref"), name=f"repeat_Ci_{lane}")
        )
        g.add(
            make_scanner(bt.levels[1], lane_ref[lane], g.ch(f"{p}_bk_crd"),
                         g.ch(f"{p}_bk_ref", "ref"), name=f"scan_Bk_{lane}")
        )
        g.add(
            make_scanner(ct.levels[0], g[f"{p}_crep"], g.ch(f"{p}_ck_crd"),
                         g.ch(f"{p}_ck_ref", "ref"), name=f"scan_Ck_{lane}")
        )
        g.add(
            Intersect(
                [MergeSide(g[f"{p}_bk_crd"], [g[f"{p}_bk_ref"]]),
                 MergeSide(g[f"{p}_ck_crd"], [g[f"{p}_ck_ref"]])],
                g.ch(f"{p}_k_crd"),
                [[g.ch(f"{p}_kb_ref", "ref")], [g.ch(f"{p}_kc_ref", "ref")]],
                name=f"intersect_k_{lane}",
            )
        )
        g.add(
            make_scanner(ct.levels[1], g[f"{p}_kc_ref"], g.ch(f"{p}_cj_crd"),
                         g.ch(f"{p}_cj_ref", "ref"), name=f"scan_Cj_{lane}")
        )
        g.add(
            Fanout(g[f"{p}_cj_crd"], [g.ch(f"{p}_cj_rep"), g.ch(f"{p}_cj_red")],
                   name=f"fan_cj_{lane}")
        )
        g.add_all(
            make_repeater(g[f"{p}_cj_rep"], g[f"{p}_kb_ref"],
                          g.ch(f"{p}_b_rep", "ref"), name=f"repeat_Bj_{lane}")
        )
        g.add(ArrayLoad(bt.vals, g[f"{p}_b_rep"], g.ch(f"{p}_bval", "vals"),
                        name=f"vals_B_{lane}"))
        g.add(ArrayLoad(ct.vals, g[f"{p}_cj_ref"], g.ch(f"{p}_cval", "vals"),
                        name=f"vals_C_{lane}"))
        g.add(ALU("mul", g[f"{p}_bval"], g[f"{p}_cval"],
                  g.ch(f"{p}_prod", "vals"), name=f"mul_{lane}"))
        g.add(
            VectorReducer(g[f"{p}_cj_red"], g[f"{p}_prod"],
                          g.ch(f"{p}_xj"), g.ch(f"{p}_xv", "vals"),
                          name=f"reduce_{lane}")
        )
        lane_xj.append(g[f"{p}_xj"])
        lane_xv.append(g[f"{p}_xv"])

    # Rejoin per-row results in original row order.
    g.add(InterleaveSerializer(lane_xj, g.ch("xj_crd"), name="join_crd"))
    g.add(InterleaveSerializer(lane_xv, g.ch("x_val", "vals"), name="join_val"))
    g.add(
        CoordDropper(g["bi_wr"], g["xj_crd"], g.ch("xi_d"), g.ch("xj_d"),
                     name="drop_i")
    )
    xi_writer = g.add(CompressedLevelWriter(g["xi_d"], name="write_Xi"))
    xj_writer = g.add(CompressedLevelWriter(g["xj_d"], name="write_Xj"))
    xv_writer = g.add(ValsWriter(g["x_val"], name="write_Xvals"))

    report = g.run(backend=backend)
    x = FiberTensor(
        (B.shape[0], C.shape[1]),
        [xi_writer.level, xj_writer.level],
        xv_writer.vals,
        name="X",
    )
    critical = max(
        block.busy_cycles
        for block in g.blocks
        if block.name.startswith(("scan_Cj", "mul_", "scan_Bk", "reduce_"))
    )
    return GammaResult(x.to_numpy(), report.cycles, lanes, critical)

"""Gamma-style parallelized SpM*SpM (paper sections 4.4 and 6.5).

"Gamma's dataflow is similar to Figure 4.  The main difference is that
Gamma adds a parallelizer ... and then uses a multi-input vector reducer
to rejoin the parallel threads."

This kernel distributes B's rows across L lanes with an element-
granularity parallelizer (each lane owns every L-th row), runs a
complete Gustavson pipeline per lane — scan B's k fiber, intersect with
C's k level, scan C's j fibers, multiply, vector-reduce — and rejoins
the per-row results with interleaving serializers feeding the shared
construction stage.  Per-block busy-cycle statistics expose the parallel
critical path, so lane scaling is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..blocks import (
    ALU,
    ArrayLoad,
    CompressedLevelWriter,
    CoordDropper,
    Fanout,
    Intersect,
    InterleaveSerializer,
    MergeSide,
    Parallelizer,
    RootFeeder,
    ValsWriter,
    VectorReducer,
    make_repeater,
    make_scanner,
)
from ..formats import FiberTensor
from ..sim.engine import run_blocks
from ..streams.channel import Channel


@dataclass
class GammaResult:
    output: np.ndarray
    cycles: int
    lanes: int
    #: busiest per-lane block's busy cycles — the parallel critical path
    critical_path: int


def gamma_spmm(B: np.ndarray, C: np.ndarray, lanes: int = 4) -> GammaResult:
    """Run Gustavson SpM*SpM with rows distributed across L lanes."""
    B = np.asarray(B, dtype=float)
    C = np.asarray(C, dtype=float)
    bt = FiberTensor.from_numpy(B, name="B")
    ct = FiberTensor.from_numpy(C, name="C")
    # A lane with zero rows would contribute a phantom empty region when
    # rejoined; clamp the lane count to the number of nonempty rows.
    nonempty_rows = bt.levels[0].fiber_size(0)
    lanes = max(1, min(lanes, nonempty_rows)) if nonempty_rows else 1

    blocks: List = []
    chans = {}

    def ch(name, kind="crd"):
        chans[name] = Channel(name, kind=kind)
        return chans[name]

    # Scan B's i level once and distribute rows across lanes.
    blocks.append(RootFeeder(ch("b_root", "ref"), name="root_B"))
    blocks.append(
        make_scanner(bt.levels[0], chans["b_root"], ch("bi_crd"), ch("bi_ref", "ref"),
                     name="scan_Bi")
    )
    blocks.append(Fanout(chans["bi_crd"], [ch("bi_par"), ch("bi_wr")], name="fan_bi"))
    lane_ref = [ch(f"l{l}_ref", "ref") for l in range(lanes)]
    lane_crd = [ch(f"l{l}_crd") for l in range(lanes)]
    blocks.append(
        Parallelizer(chans["bi_ref"], lane_ref, granularity="element", name="par_ref")
    )
    blocks.append(
        Parallelizer(chans["bi_par"], lane_crd, granularity="element", name="par_crd")
    )

    lane_xj, lane_xv = [], []
    for lane in range(lanes):
        p = f"l{lane}"
        blocks.append(RootFeeder(ch(f"{p}_croot", "ref"), name=f"root_C_{lane}"))
        blocks.extend(
            make_repeater(lane_crd[lane], chans[f"{p}_croot"],
                          ch(f"{p}_crep", "ref"), name=f"repeat_Ci_{lane}")
        )
        blocks.append(
            make_scanner(bt.levels[1], lane_ref[lane], ch(f"{p}_bk_crd"),
                         ch(f"{p}_bk_ref", "ref"), name=f"scan_Bk_{lane}")
        )
        blocks.append(
            make_scanner(ct.levels[0], chans[f"{p}_crep"], ch(f"{p}_ck_crd"),
                         ch(f"{p}_ck_ref", "ref"), name=f"scan_Ck_{lane}")
        )
        blocks.append(
            Intersect(
                [MergeSide(chans[f"{p}_bk_crd"], [chans[f"{p}_bk_ref"]]),
                 MergeSide(chans[f"{p}_ck_crd"], [chans[f"{p}_ck_ref"]])],
                ch(f"{p}_k_crd"),
                [[ch(f"{p}_kb_ref", "ref")], [ch(f"{p}_kc_ref", "ref")]],
                name=f"intersect_k_{lane}",
            )
        )
        blocks.append(
            make_scanner(ct.levels[1], chans[f"{p}_kc_ref"], ch(f"{p}_cj_crd"),
                         ch(f"{p}_cj_ref", "ref"), name=f"scan_Cj_{lane}")
        )
        blocks.append(
            Fanout(chans[f"{p}_cj_crd"], [ch(f"{p}_cj_rep"), ch(f"{p}_cj_red")],
                   name=f"fan_cj_{lane}")
        )
        blocks.extend(
            make_repeater(chans[f"{p}_cj_rep"], chans[f"{p}_kb_ref"],
                          ch(f"{p}_b_rep", "ref"), name=f"repeat_Bj_{lane}")
        )
        blocks.append(ArrayLoad(bt.vals, chans[f"{p}_b_rep"], ch(f"{p}_bval", "vals"),
                                name=f"vals_B_{lane}"))
        blocks.append(ArrayLoad(ct.vals, chans[f"{p}_cj_ref"], ch(f"{p}_cval", "vals"),
                                name=f"vals_C_{lane}"))
        blocks.append(ALU("mul", chans[f"{p}_bval"], chans[f"{p}_cval"],
                          ch(f"{p}_prod", "vals"), name=f"mul_{lane}"))
        blocks.append(
            VectorReducer(chans[f"{p}_cj_red"], chans[f"{p}_prod"],
                          ch(f"{p}_xj"), ch(f"{p}_xv", "vals"),
                          name=f"reduce_{lane}")
        )
        lane_xj.append(chans[f"{p}_xj"])
        lane_xv.append(chans[f"{p}_xv"])

    # Rejoin per-row results in original row order.
    blocks.append(InterleaveSerializer(lane_xj, ch("xj_crd"), name="join_crd"))
    blocks.append(InterleaveSerializer(lane_xv, ch("x_val", "vals"), name="join_val"))
    blocks.append(
        CoordDropper(chans["bi_wr"], chans["xj_crd"], ch("xi_d"), ch("xj_d"),
                     name="drop_i")
    )
    xi_writer = CompressedLevelWriter(chans["xi_d"], name="write_Xi")
    xj_writer = CompressedLevelWriter(chans["xj_d"], name="write_Xj")
    xv_writer = ValsWriter(chans["x_val"], name="write_Xvals")
    blocks.extend([xi_writer, xj_writer, xv_writer])

    report = run_blocks(blocks)
    x = FiberTensor(
        (B.shape[0], C.shape[1]),
        [xi_writer.level, xj_writer.level],
        xv_writer.vals,
        name="X",
    )
    critical = max(
        block.busy_cycles
        for block in blocks
        if block.name.startswith(("scan_Cj", "mul_", "scan_Bk", "reduce_"))
    )
    return GammaResult(x.to_numpy(), report.cycles, lanes, critical)

"""Packaging for the SAM reproduction (src/ layout).

Kept as a plain setup.py so offline installs without the wheel package
still work: ``pip install -e .`` exposes the ``repro`` package and the
``repro`` console script without PYTHONPATH gymnastics.
"""

from setuptools import find_packages, setup

setup(
    name="repro-sam",
    version="0.2.0",
    description=(
        "Reproduction of 'The Sparse Abstract Machine' (ASPLOS 2023): "
        "Custard compiler, SAM dataflow simulator with pluggable "
        "cycle/event/functional backends, and the paper's studies"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": ["pytest", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)

"""Benchmark: regenerate Figure 11 (fused vs. unfused SDDMM)."""

from benchmarks.conftest import full_scale
from repro.studies.fig11 import format_fig11, run_fig11


def _series(points, variant):
    return {p.k: p.cycles for p in points if p.variant == variant}


def test_fig11_fusion_study(benchmark):
    size = 100 if full_scale() else 30
    points = benchmark.pedantic(
        lambda: run_fig11(size=size, k_sweep=(1, 10, 100)), rounds=1, iterations=1
    )
    print()
    print(format_fig11(points))
    assert all(p.correct for p in points)
    unfused = _series(points, "unfused")
    locate = _series(points, "fused_locate")
    coiter = _series(points, "fused_coiter")
    for k in (1, 10, 100):
        # "the unfused implementation performs far worse"
        assert unfused[k] > 3 * coiter[k]
        assert unfused[k] > 3 * locate[k]
    # "locating provides significant performance gains when the amount of
    # computation is modest"
    assert locate[1] < coiter[1] / 2
    # "this advantage becomes negligible as K increases"
    assert locate[100] > 0.5 * coiter[100]

"""Benchmark: regenerate Table 2 (expressions lost per removed primitive)."""

from benchmarks.conftest import full_scale
from repro.studies.table2 import format_table2, run_table2


def test_table2_ablation(benchmark):
    distinct = 3839 if full_scale() else 250
    rows = benchmark.pedantic(
        lambda: run_table2(distinct=distinct), rounds=1, iterations=1
    )
    print()
    print(format_table2(rows))
    by_name = {row.scenario: row for row in rows}
    # The paper's qualitative conclusions:
    # 1. removing any primitive loses expressions;
    for row in rows:
        assert row.lost_unique > 0, f"{row.scenario} lost nothing"
    # 2. scanners, writers and multipliers are near-universal;
    assert by_name["comp_and_uncomp_level_scanners"].pct_unique > 95
    assert by_name["comp_and_uncomp_level_writers"].pct_unique > 95
    assert by_name["multiplier"].pct_unique > 60
    # 3. union/adder/dropper affect a minority of algorithms;
    assert by_name["unioner"].pct_unique < 40
    assert by_name["adder"].pct_unique < 40
    assert by_name["coordinate_dropper"].pct_unique < 40
    # 4. keeping the locator softens intersecter removal.
    assert (
        by_name["intersecter_keep_locator"].pct_unique
        < by_name["intersecter_with_locator_removed"].pct_unique
    )

"""Design-choice ablations called out in DESIGN.md.

* level-based vs point-based stream representation (section 3.8's token
  arithmetic, validated empirically);
* reducer empty-fiber policy (zero vs drop, section 3.6/3.7);
* locate vs coiterate SpMV (section 4.2);
* OuterSPACE-style factorized vs fused SpM*SpM (sections 2.3/6.5).
"""

import numpy as np

from repro.data.synthetic import random_sparse_matrix
from repro.kernels.outerspace import outerspace_spmm
from repro.kernels.spmm import run_spmm
from repro.kernels.spmv import spmv_locate, spmv_program


def test_stream_representation_token_counts(benchmark):
    """Section 3.8: level-based streams beat point-based tuples when rows
    average more than ~4 nonzeros."""
    from repro.formats import FiberTensor
    from repro.lang import compile_expression

    rng = np.random.default_rng(0)
    dense = (rng.random((64, 64)) < 0.15) * rng.random((64, 64))
    tensor = FiberTensor.from_numpy(dense, name="B")
    program = compile_expression("X(i,j) = B(i,j)")
    scan_i = next(n for n in program.graph.nodes if n.endswith("_i"))
    scan_j = next(n for n in program.graph.nodes if n.endswith("_j"))

    def run():
        return program.run(
            {"B": tensor}, record=(f"{scan_i}.crd", f"{scan_j}.crd")
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    level_tokens = sum(
        ch.pushed_total for ch in result.bound.channels.values() if ch.record
    )
    point_tokens = 3 * tensor.nnz  # (i, j, val) tuples, section 3.8
    nnz_per_row = tensor.nnz / 64
    print(
        f"\nlevel-based tokens={level_tokens}, point-based={point_tokens}, "
        f"nnz/row={nnz_per_row:.1f}"
    )
    if nnz_per_row > 4:
        assert level_tokens < point_tokens


def test_reducer_empty_policy(benchmark):
    """Zero-policy keeps explicit zeros for droppers; drop-policy removes
    them at the reducer. Both yield the same dense result."""
    from repro.blocks import ScalarReducer, Sink, StreamFeeder
    from repro.sim.engine import run_blocks
    from repro.streams import Channel, DONE, Stop

    tokens = [1.0, Stop(0), Stop(0), 2.0, Stop(1), DONE]

    def run(policy):
        v, out = Channel("v"), Channel("o", record=True)
        run_blocks([
            StreamFeeder(tokens, v),
            ScalarReducer(v, out, empty_policy=policy),
            Sink(out),
        ])
        return out.pushed_data

    zero_tokens = run("zero")
    drop_tokens = run("drop")
    benchmark.pedantic(lambda: run("zero"), rounds=1, iterations=1)
    print(f"\nzero-policy emits {zero_tokens} values, drop-policy {drop_tokens}")
    assert zero_tokens == drop_tokens + 1


def test_spmv_locate_vs_coiterate(benchmark):
    """Section 4.2: locating into a dense vector beats coiterating it."""
    rng = np.random.default_rng(1)
    B = random_sparse_matrix(48, 48, 0.05, seed=1)
    c = rng.random(48)

    coiter_prog = spmv_program()

    def run():
        coiter = coiter_prog.run(
            {"B": B, "c": c},
        ).cycles
        _, _, locate = spmv_locate(B, c)
        return coiter, locate

    coiter_cycles, locate_cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncoiterate={coiter_cycles} cycles, locate={locate_cycles} cycles")
    # Coiterating streams the dense vector's coordinates; locate does not.
    assert locate_cycles < coiter_cycles


def test_factorized_vs_fused_spmm(benchmark):
    """OuterSPACE's two-phase factorization pays for materialising Y."""
    B = random_sparse_matrix(32, 32, 0.1, seed=2)
    C = random_sparse_matrix(32, 32, 0.1, seed=3)

    def run():
        fused = run_spmm(B, C, "ikj")
        factorized = outerspace_spmm(B, C)
        return fused, factorized

    fused, factorized = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.allclose(fused.to_numpy(), B @ C)
    assert np.allclose(factorized.output, B @ C)
    print(
        f"\nfused={fused.cycles} cycles, factorized="
        f"{factorized.total_cycles} (multiply {factorized.multiply_cycles} + "
        f"merge {factorized.merge_cycles})"
    )

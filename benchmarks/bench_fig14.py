"""Benchmark: regenerate Figure 14 (stream token composition)."""

from benchmarks.conftest import full_scale
from repro.studies.fig14 import averages, format_fig14, run_fig14


def test_fig14_token_breakdown(benchmark):
    max_nnz = None if full_scale() else 11000
    rows = benchmark.pedantic(
        lambda: run_fig14(max_nnz=max_nnz), rounds=1, iterations=1
    )
    print()
    print(format_fig14(rows))
    avg = averages(rows)
    # "Most tokens on the Bi stream are idle since the Bi level scanner is
    # in the done state while the inner level iterates" (paper: 83.32%).
    assert avg["outer_idle_pct"] > 50
    # The inner level is never idle in a fully pipelined run.
    for row in rows:
        assert row.inner.fractions()["idle"] < 0.05
    # "the control token overhead of our representation is reasonable":
    # inner-level stop overhead stays bounded (paper range 0.12%-33.26%).
    for row in rows:
        assert row.inner.control_overhead() < 0.40
    # Stop overhead shrinks as matrices grow (rows gain more nonzeros).
    small = [r for r in rows if r.nnz < 1000]
    large = [r for r in rows if r.nnz > 5000]
    if small and large:
        small_stop = sum(r.inner.fractions()["stop"] for r in small) / len(small)
        large_stop = sum(r.inner.fractions()["stop"] for r in large) / len(large)
        assert large_stop < small_stop

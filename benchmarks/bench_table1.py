"""Benchmark: regenerate Table 1 (SAM primitive counts per expression)."""

from repro.lang import TABLE1_COLUMNS
from repro.studies.table1 import ENTRIES, KNOWN_DIVERGENCES, format_table1, run_table1


def test_table1_counts_match_paper(benchmark):
    rows = benchmark(run_table1)
    print()
    print(format_table1(rows))
    for entry, _, counts, paper, match in rows:
        divergences = KNOWN_DIVERGENCES.get(entry.name, {})
        for column in TABLE1_COLUMNS:
            if column in divergences:
                ours, theirs = divergences[column]
                assert counts[column] == ours and paper[column] == theirs
            else:
                assert counts[column] == paper[column], (
                    f"{entry.name}: {column} = {counts[column]}, "
                    f"paper says {paper[column]}"
                )


def test_table1_features(benchmark):
    from repro.lang import compile_expression, expression_features

    def features():
        out = {}
        for entry in ENTRIES:
            program = compile_expression(
                entry.expression, formats=entry.formats, schedule=entry.schedule
            )
            out[entry.name] = expression_features(program)
        return out

    feats = benchmark(features)
    # Spot-check the left half of Table 1.
    assert feats["SpMV"].out_order == 1 and feats["SpMV"].broadcast
    assert feats["InnerProd"].out_order == 0 and not feats["InnerProd"].broadcast
    assert feats["MatTransMul"].num_inputs == 5
    assert feats["MatTransMul"].reduce_order == 1  # the paper's "1"
    assert feats["MMAdd"].ops == ("+",)
    assert feats["SDDMM"].num_inputs == 3

"""Benchmark: regenerate Table 1 (SAM primitive counts per expression)."""

from repro.lang import TABLE1_COLUMNS
from repro.studies.table1 import ENTRIES, format_table1, run_table1


def test_table1_counts_match_paper(benchmark):
    rows = benchmark(run_table1)
    print()
    print(format_table1(rows))
    for entry, _, counts, paper, divergence, match in rows:
        assert match, f"{entry.name}: row does not match the paper"
        for column in TABLE1_COLUMNS:
            if divergence is not None and column == divergence["column"]:
                # Divergences are legitimate only when the executed
                # differential check proved them immaterial.
                assert divergence["redundant"], divergence
                assert counts[column] == divergence["ours"]
                assert paper[column] == divergence["paper"]
            else:
                assert counts[column] == paper[column], (
                    f"{entry.name}: {column} = {counts[column]}, "
                    f"paper says {paper[column]}"
                )


def test_table1_features(benchmark):
    from repro.lang import compile_expression, expression_features

    def features():
        out = {}
        for entry in ENTRIES:
            program = compile_expression(
                entry.expression, formats=entry.formats, schedule=entry.schedule
            )
            out[entry.name] = expression_features(program)
        return out

    feats = benchmark(features)
    # Spot-check the left half of Table 1.
    assert feats["SpMV"].out_order == 1 and feats["SpMV"].broadcast
    assert feats["InnerProd"].out_order == 0 and not feats["InnerProd"].broadcast
    assert feats["MatTransMul"].num_inputs == 5
    assert feats["MatTransMul"].reduce_order == 1  # the paper's "1"
    assert feats["MMAdd"].ops == ("+",)
    assert feats["SDDMM"].num_inputs == 3

"""Wall-clock comparison of the simulation backends, emitting JSON.

Times CycleEngine vs EventEngine vs FunctionalEngine on fig13-sized
workloads (size-2000 element-wise vector multiplies) plus one SpM*SpM
graph, isolating engine execution (graph binding and tensor construction
happen outside the timed region; every engine gets a freshly bound
graph).  EventEngine cycle counts are asserted identical to the
reference engine; FunctionalEngine is outputs-only.

Usage::

    PYTHONPATH=src python benchmarks/bench_engines.py [--rounds 3] [-o out.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.data.synthetic import random_sparse_matrix, urandom_vector
from repro.formats import FiberTensor
from repro.graph.bind import bind
from repro.kernels.spmm import spmm_program
from repro.lang import compile_expression

ENGINES = ("cycle", "event", "functional")


def _vecmul_case(name: str, size: int, nnz: int, dense: bool):
    b = urandom_vector(size, nnz, seed=40)
    c = urandom_vector(size, nnz, seed=41)
    formats = {"b": ["dense"], "c": ["dense"]} if dense else None
    prog = compile_expression("x(i) = b(i) * c(i)", formats=formats)
    fmt = ("dense",) if dense else None
    tensors = {
        "b": FiberTensor.from_numpy(b, formats=fmt, name="b"),
        "c": FiberTensor.from_numpy(c, formats=fmt, name="c"),
    }
    return name, prog.graph, tensors


def _spmm_case(name: str, size: int, density: float, order: str):
    B = np.asarray(random_sparse_matrix(size, size, density, seed=42), float)
    C = np.asarray(random_sparse_matrix(size, size, density, seed=43), float)
    prog = spmm_program(order)
    fmtB = prog.formats.for_access(
        next(a for a in prog.assignment.accesses if a.tensor == "B")
    )
    fmtC = prog.formats.for_access(
        next(a for a in prog.assignment.accesses if a.tensor == "C")
    )
    tensors = {
        "B": FiberTensor.from_numpy(B, formats=fmtB.formats,
                                    mode_order=fmtB.mode_order, name="B"),
        "C": FiberTensor.from_numpy(C, formats=fmtC.formats,
                                    mode_order=fmtC.mode_order, name="C"),
    }
    return name, prog.graph, tensors


def build_cases():
    return [
        _vecmul_case("vecmul_crd_2000_nnz400", 2000, 400, dense=False),
        _vecmul_case("vecmul_crd_2000_nnz100", 2000, 100, dense=False),
        _vecmul_case("vecmul_dense_2000", 2000, 400, dense=True),
        _spmm_case("spmm_ikj_50x50_d8", 50, 0.08, "ikj"),
        _spmm_case("spmm_ijk_40x40_d8", 40, 0.08, "ijk"),
    ]


def run_bench(rounds: int = 3) -> dict:
    results = []
    for name, graph, tensors in build_cases():
        entry = {"workload": name, "engines": {}}
        cycles_by_engine = {}
        for engine in ENGINES:
            best = None
            for _ in range(rounds):
                bound = bind(graph, tensors)
                start = time.perf_counter()
                report = bound.run(backend=engine)
                elapsed = time.perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            cycles_by_engine[engine] = report.cycles
            entry["engines"][engine] = {
                "seconds": best,
                "cycles": report.cycles,
            }
        if cycles_by_engine["event"] != cycles_by_engine["cycle"]:
            raise AssertionError(
                f"{name}: EventEngine cycles {cycles_by_engine['event']} != "
                f"CycleEngine cycles {cycles_by_engine['cycle']}"
            )
        base = entry["engines"]["cycle"]["seconds"]
        for engine in ENGINES:
            entry["engines"][engine]["speedup_vs_cycle"] = (
                base / entry["engines"][engine]["seconds"]
            )
        results.append(entry)
    best_functional = max(
        e["engines"]["functional"]["speedup_vs_cycle"] for e in results
    )
    return {
        "rounds": rounds,
        "workloads": results,
        "summary": {
            "best_functional_speedup": best_functional,
            "best_event_speedup": max(
                e["engines"]["event"]["speedup_vs_cycle"] for e in results
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per engine (best is kept)")
    parser.add_argument("-o", "--output", default=None,
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)
    payload = run_bench(rounds=args.rounds)
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())

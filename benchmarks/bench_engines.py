"""Wall-clock comparison of the simulation backends, emitting JSON.

Four sections:

* **bound-graph workloads** — fig13-sized element-wise multiplies plus
  SpM*SpM graphs, timed under every backend (cycle, event, timed-batch,
  compiled, functional).  The timed backends' cycle counts are asserted
  identical to the reference engine; functional is outputs-only.
* **timed scaling** — iterate-locate SpMV at 1e4 and 1e5 nnz under the
  four timed backends.  Two gates ride this section (both asserted, so
  CI fails on regressions): the epoch-batching headline — ``timed-batch``
  must beat ``event`` by >= 5x wall-clock at 1e5 nnz — and the fusion
  headline — ``compiled`` must beat ``timed-batch`` by >= 3x there —
  both while reproducing the reference cycle count bit for bit.
  Compiled rows also carry the segment-fusion statistics
  (segments/fused blocks/fallbacks/kinds) and JIT dispatcher/plan-cache
  stats from the last run.
* **kernel scaling** — Gamma SpM*SpM and element-wise multiply at ~2e4
  and ~1e5 nnz under ``timed-batch`` and ``compiled`` only (the scalar
  backends would take minutes at these sizes).  Cycle counts must agree
  bit for bit, and a third gate rides the largest Gamma row: the
  merge-head/repeater/writer-tail fusion must make ``compiled`` >= 1.5x
  faster than ``timed-batch``.
* **jit comparison** — the compiled backend on spmv_locate at 1e5 nnz
  and the largest Gamma row under ``REPRO_JIT=0`` vs ``REPRO_JIT=1``.
  Skipped (rows marked unavailable) without numba; with numba the JIT
  tier must be >= 1.5x on spmv_locate and no slower on Gamma (>= 0.95x,
  the noise floor), with identical cycle counts either way.

Every measured number is the **median** of ``--rounds`` timing rounds
taken *after* ``--warmup`` untimed rounds, so single-shot wall-clock
noise cannot trip a gate and JIT compile time never pollutes a measured
round.

Usage::

    PYTHONPATH=src python benchmarks/bench_engines.py \
        [--rounds 3] [--warmup 1] [-o BENCH_engines.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.data.synthetic import random_sparse_matrix, urandom_vector
from repro.formats import FiberTensor
from repro.graph.bind import bind
from repro.kernels.spmm import spmm_program
from repro.kernels.spmv import spmv_locate
from repro.lang import compile_expression

ENGINES = ("cycle", "event", "timed-batch", "compiled", "functional")
#: backends that model time (and must agree with the reference exactly)
TIMED_ENGINES = ("cycle", "event", "timed-batch", "compiled")
#: nnz sizes for the timed-scaling section
SCALING_SIZES = (10_000, 100_000)
#: required timed-batch speedup over event at the largest scaling size
SCALING_GATE = 5.0
#: required compiled speedup over timed-batch at the largest scaling size
COMPILED_GATE = 3.0
#: matrix densities for the kernel-scaling section (2000x2000 operands:
#: ~2e4 and ~1e5 nnz per matrix)
KERNEL_DENSITIES = (0.005, 0.025)
#: required compiled speedup over timed-batch on the largest Gamma row
GAMMA_GATE = 1.5
#: required JIT-tier speedup over the numpy path on spmv_locate at 1e5 nnz
JIT_SPMV_GATE = 1.5
#: "gamma no slower" floor for the JIT tier (0.95 = 5% noise allowance)
JIT_GAMMA_FLOOR = 0.95


def _median_time(fn, rounds: int, warmup: int):
    """``(median_seconds, last_result)`` of *fn* over timed rounds.

    Runs ``warmup + rounds`` times; the first *warmup* rounds are
    discarded (cold caches, JIT compilation), the median of the rest is
    reported.
    """
    times = []
    result = None
    for _ in range(warmup + rounds):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times[warmup:])), result


def _fusion_stats() -> dict:
    """Snapshot of the compiled backend's last-run fusion statistics."""
    from repro.sim.backends.compiled import LAST_FUSION_STATS

    return dict(LAST_FUSION_STATS)


def _jit_row_stats() -> dict:
    """Compact JIT summary of the compiled backend's last run."""
    from repro.sim.backends.compiled import LAST_JIT_STATS

    stats = dict(LAST_JIT_STATS)
    return {
        "backend": stats.get("backend"),
        "plan_cache": dict(stats.get("plan_cache", {})),
        "plans": len(stats.get("plans", ())),
    }


def _vecmul_case(name: str, size: int, nnz: int, dense: bool):
    b = urandom_vector(size, nnz, seed=40)
    c = urandom_vector(size, nnz, seed=41)
    formats = {"b": ["dense"], "c": ["dense"]} if dense else None
    prog = compile_expression("x(i) = b(i) * c(i)", formats=formats)
    fmt = ("dense",) if dense else None
    tensors = {
        "b": FiberTensor.from_numpy(b, formats=fmt, name="b"),
        "c": FiberTensor.from_numpy(c, formats=fmt, name="c"),
    }
    return name, prog.graph, tensors


def _spmm_case(name: str, size: int, density: float, order: str):
    B = np.asarray(random_sparse_matrix(size, size, density, seed=42), float)
    C = np.asarray(random_sparse_matrix(size, size, density, seed=43), float)
    prog = spmm_program(order)
    fmtB = prog.formats.for_access(
        next(a for a in prog.assignment.accesses if a.tensor == "B")
    )
    fmtC = prog.formats.for_access(
        next(a for a in prog.assignment.accesses if a.tensor == "C")
    )
    tensors = {
        "B": FiberTensor.from_numpy(B, formats=fmtB.formats,
                                    mode_order=fmtB.mode_order, name="B"),
        "C": FiberTensor.from_numpy(C, formats=fmtC.formats,
                                    mode_order=fmtC.mode_order, name="C"),
    }
    return name, prog.graph, tensors


def build_cases():
    return [
        _vecmul_case("vecmul_crd_2000_nnz400", 2000, 400, dense=False),
        _vecmul_case("vecmul_crd_2000_nnz100", 2000, 100, dense=False),
        _vecmul_case("vecmul_dense_2000", 2000, 400, dense=True),
        _spmm_case("spmm_ikj_50x50_d8", 50, 0.08, "ikj"),
        _spmm_case("spmm_ijk_40x40_d8", 40, 0.08, "ijk"),
    ]


def _scaling_operand(nnz: int):
    size = max(4, nnz // 4)
    rng = np.random.default_rng(7)
    rows = rng.integers(0, size, nnz)
    cols = rng.integers(0, size, nnz)
    vals = rng.random(nnz) + 0.5
    tensor = FiberTensor.from_coords(
        (size, size), np.stack([rows, cols], axis=1), vals, name="B"
    )
    return tensor, rng.random(size)


def run_bound_graphs(rounds: int, warmup: int) -> list:
    results = []
    for name, graph, tensors in build_cases():
        entry = {"workload": name, "engines": {}}
        cycles_by_engine = {}
        for engine in ENGINES:
            # bind() is setup, not simulation: rebuild per round, time
            # only the run
            times = []
            report = None
            for _ in range(warmup + rounds):
                bound = bind(graph, tensors)
                start = time.perf_counter()
                report = bound.run(backend=engine)
                times.append(time.perf_counter() - start)
            median = float(np.median(times[warmup:]))
            cycles_by_engine[engine] = report.cycles
            entry["engines"][engine] = {
                "seconds": median,
                "cycles": report.cycles,
            }
            if engine == "compiled":
                entry["engines"][engine]["fusion"] = _fusion_stats()
                entry["engines"][engine]["jit"] = _jit_row_stats()
        for engine in ("event", "timed-batch", "compiled"):
            if cycles_by_engine[engine] != cycles_by_engine["cycle"]:
                raise AssertionError(
                    f"{name}: {engine} cycles {cycles_by_engine[engine]} != "
                    f"cycle reference {cycles_by_engine['cycle']}"
                )
        base = entry["engines"]["cycle"]["seconds"]
        for engine in ENGINES:
            entry["engines"][engine]["speedup_vs_cycle"] = (
                base / entry["engines"][engine]["seconds"]
            )
        results.append(entry)
    return results


def run_timed_scaling(rounds: int, warmup: int) -> list:
    results = []
    for nnz in SCALING_SIZES:
        tensor, vec = _scaling_operand(nnz)
        entry = {"workload": f"spmv_locate_{nnz}", "nnz": nnz, "engines": {}}
        cycles_by_engine = {}
        for engine in TIMED_ENGINES:
            median, (_, _, cycles) = _median_time(
                lambda engine=engine: spmv_locate(tensor, vec, backend=engine),
                rounds, warmup,
            )
            cycles_by_engine[engine] = cycles
            entry["engines"][engine] = {"seconds": median, "cycles": cycles}
            if engine == "compiled":
                entry["engines"][engine]["fusion"] = _fusion_stats()
                entry["engines"][engine]["jit"] = _jit_row_stats()
        for engine in ("event", "timed-batch", "compiled"):
            if cycles_by_engine[engine] != cycles_by_engine["cycle"]:
                raise AssertionError(
                    f"spmv_locate nnz={nnz}: {engine} cycles "
                    f"{cycles_by_engine[engine]} != reference "
                    f"{cycles_by_engine['cycle']}"
                )
        entry["timed_batch_speedup_vs_event"] = (
            entry["engines"]["event"]["seconds"]
            / entry["engines"]["timed-batch"]["seconds"]
        )
        entry["compiled_speedup_vs_timed_batch"] = (
            entry["engines"]["timed-batch"]["seconds"]
            / entry["engines"]["compiled"]["seconds"]
        )
        results.append(entry)
    gate_entry = results[-1]
    if gate_entry["timed_batch_speedup_vs_event"] < SCALING_GATE:
        raise AssertionError(
            f"timed-batch must be >= {SCALING_GATE}x faster than event on "
            f"spmv_locate at {SCALING_SIZES[-1]} nnz, measured "
            f"{gate_entry['timed_batch_speedup_vs_event']:.2f}x"
        )
    if gate_entry["compiled_speedup_vs_timed_batch"] < COMPILED_GATE:
        raise AssertionError(
            f"compiled must be >= {COMPILED_GATE}x faster than timed-batch "
            f"on spmv_locate at {SCALING_SIZES[-1]} nnz, measured "
            f"{gate_entry['compiled_speedup_vs_timed_batch']:.2f}x"
        )
    return results


def run_kernel_scaling(rounds: int, warmup: int) -> list:
    from repro.kernels.elementwise import vecmul
    from repro.kernels.gamma import gamma_spmm

    results = []
    for density in KERNEL_DENSITIES:
        B = np.asarray(random_sparse_matrix(2000, 2000, density, seed=42),
                       float)
        C = np.asarray(random_sparse_matrix(2000, 2000, density, seed=43),
                       float)
        nnz = int(np.count_nonzero(B))
        entry = {"workload": f"gamma_2000_d{density}", "nnz": nnz,
                 "engines": {}}
        cycles = {}
        for engine in ("timed-batch", "compiled"):
            median, result = _median_time(
                lambda engine=engine: gamma_spmm(B, C, backend=engine),
                rounds, warmup,
            )
            cycles[engine] = result.cycles
            entry["engines"][engine] = {"seconds": median,
                                        "cycles": result.cycles}
            if engine == "compiled":
                entry["engines"][engine]["fusion"] = _fusion_stats()
                entry["engines"][engine]["jit"] = _jit_row_stats()
        if cycles["compiled"] != cycles["timed-batch"]:
            raise AssertionError(
                f"gamma d={density}: compiled cycles {cycles['compiled']} "
                f"!= timed-batch {cycles['timed-batch']}"
            )
        entry["compiled_speedup_vs_timed_batch"] = (
            entry["engines"]["timed-batch"]["seconds"]
            / entry["engines"]["compiled"]["seconds"]
        )
        results.append(entry)

        size = nnz * 4
        b = urandom_vector(size, nnz, seed=50)
        c = urandom_vector(size, nnz, seed=51)
        entry = {"workload": f"vecmul_crd_{size}", "nnz": nnz, "engines": {}}
        cycles = {}
        for engine in ("timed-batch", "compiled"):
            median, result = _median_time(
                lambda engine=engine: vecmul("crd", b, c, backend=engine),
                rounds, warmup,
            )
            cycles[engine] = result.cycles
            entry["engines"][engine] = {"seconds": median,
                                        "cycles": result.cycles}
            if engine == "compiled":
                entry["engines"][engine]["fusion"] = _fusion_stats()
                entry["engines"][engine]["jit"] = _jit_row_stats()
        if cycles["compiled"] != cycles["timed-batch"]:
            raise AssertionError(
                f"vecmul nnz={nnz}: compiled cycles {cycles['compiled']} "
                f"!= timed-batch {cycles['timed-batch']}"
            )
        entry["compiled_speedup_vs_timed_batch"] = (
            entry["engines"]["timed-batch"]["seconds"]
            / entry["engines"]["compiled"]["seconds"]
        )
        results.append(entry)
    gamma_rows = [e for e in results if e["workload"].startswith("gamma")]
    gate_entry = gamma_rows[-1]
    if gate_entry["compiled_speedup_vs_timed_batch"] < GAMMA_GATE:
        raise AssertionError(
            f"compiled must be >= {GAMMA_GATE}x faster than timed-batch on "
            f"Gamma at {gate_entry['nnz']} nnz, measured "
            f"{gate_entry['compiled_speedup_vs_timed_batch']:.2f}x"
        )
    return results


def _set_jit_mode(mode: str) -> None:
    from repro.jit import reconfigure, warmup as jit_warmup

    os.environ["REPRO_JIT"] = mode
    reconfigure()
    jit_warmup()  # compile outside any timed round (no-op unless numba)


def run_jit_comparison(rounds: int, warmup: int) -> dict:
    """Compiled backend, numpy path vs JIT tier — gated when numba exists.

    Both modes must produce identical cycle counts; with numba installed
    the JIT tier must be >= ``JIT_SPMV_GATE`` x on spmv_locate at 1e5 nnz
    and >= ``JIT_GAMMA_FLOOR`` x on the largest Gamma row (post-warmup
    medians).
    """
    from repro.jit import numba_available, reconfigure
    from repro.kernels.gamma import gamma_spmm

    available = numba_available()
    section = {"available": available, "spmv_gate": JIT_SPMV_GATE,
               "gamma_floor": JIT_GAMMA_FLOOR, "workloads": []}
    if not available:
        return section

    tensor, vec = _scaling_operand(SCALING_SIZES[-1])
    density = KERNEL_DENSITIES[-1]
    B = np.asarray(random_sparse_matrix(2000, 2000, density, seed=42), float)
    C = np.asarray(random_sparse_matrix(2000, 2000, density, seed=43), float)

    cases = [
        ("spmv_locate_100000",
         lambda: spmv_locate(tensor, vec, backend="compiled")[2]),
        (f"gamma_2000_d{density}",
         lambda: gamma_spmm(B, C, backend="compiled").cycles),
    ]
    saved = os.environ.get("REPRO_JIT")
    try:
        for name, fn in cases:
            row = {"workload": name}
            _set_jit_mode("0")
            row["numpy_seconds"], cycles_off = _median_time(
                lambda fn=fn: fn(), rounds, warmup
            )
            _set_jit_mode("1")
            row["jit_seconds"], cycles_on = _median_time(
                lambda fn=fn: fn(), rounds, warmup
            )
            row["jit"] = _jit_row_stats()
            if cycles_on != cycles_off:
                raise AssertionError(
                    f"{name}: cycles differ under REPRO_JIT=1 "
                    f"({cycles_on}) vs REPRO_JIT=0 ({cycles_off})"
                )
            row["cycles"] = cycles_on
            row["jit_speedup"] = row["numpy_seconds"] / row["jit_seconds"]
            section["workloads"].append(row)
    finally:
        if saved is None:
            os.environ.pop("REPRO_JIT", None)
        else:
            os.environ["REPRO_JIT"] = saved
        reconfigure()

    spmv_row = section["workloads"][0]
    if spmv_row["jit_speedup"] < JIT_SPMV_GATE:
        raise AssertionError(
            f"JIT tier must be >= {JIT_SPMV_GATE}x the numpy path on "
            f"spmv_locate at {SCALING_SIZES[-1]} nnz, measured "
            f"{spmv_row['jit_speedup']:.2f}x"
        )
    gamma_row = section["workloads"][1]
    if gamma_row["jit_speedup"] < JIT_GAMMA_FLOOR:
        raise AssertionError(
            f"JIT tier must not slow Gamma down (>= {JIT_GAMMA_FLOOR}x), "
            f"measured {gamma_row['jit_speedup']:.2f}x"
        )
    return section


def run_bench(rounds: int = 3, warmup: int = 1) -> dict:
    from repro.jit import jit_stats

    workloads = run_bound_graphs(rounds, warmup)
    scaling = run_timed_scaling(rounds, warmup)
    kernels = run_kernel_scaling(rounds, warmup)
    jit = run_jit_comparison(rounds, warmup)
    return {
        "rounds": rounds,
        "warmup": warmup,
        "jit": jit_stats(),
        "workloads": workloads,
        "timed_scaling": scaling,
        "kernel_scaling": kernels,
        "jit_comparison": jit,
        "summary": {
            "best_functional_speedup": max(
                e["engines"]["functional"]["speedup_vs_cycle"] for e in workloads
            ),
            "best_event_speedup": max(
                e["engines"]["event"]["speedup_vs_cycle"] for e in workloads
            ),
            "best_timed_batch_speedup": max(
                e["engines"]["timed-batch"]["speedup_vs_cycle"] for e in workloads
            ),
            "best_compiled_speedup": max(
                e["engines"]["compiled"]["speedup_vs_cycle"] for e in workloads
            ),
            "timed_batch_speedup_vs_event_at_scale": scaling[-1][
                "timed_batch_speedup_vs_event"
            ],
            "compiled_speedup_vs_timed_batch_at_scale": scaling[-1][
                "compiled_speedup_vs_timed_batch"
            ],
            "gamma_compiled_speedup_vs_timed_batch_at_scale": [
                e for e in kernels if e["workload"].startswith("gamma")
            ][-1]["compiled_speedup_vs_timed_batch"],
            "jit_spmv_speedup_at_scale": (
                jit["workloads"][0]["jit_speedup"]
                if jit["workloads"] else None
            ),
            "scaling_gate": SCALING_GATE,
            "compiled_gate": COMPILED_GATE,
            "gamma_gate": GAMMA_GATE,
            "jit_spmv_gate": JIT_SPMV_GATE,
            "jit_gamma_floor": JIT_GAMMA_FLOOR,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per engine (median is kept)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup rounds before the timed ones")
    parser.add_argument("-o", "--output", default=None,
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)
    payload = run_bench(rounds=args.rounds, warmup=args.warmup)
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())

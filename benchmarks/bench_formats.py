"""Construction wall-clock for the vectorized fibertree data plane, as JSON.

Times ``FiberTensor.from_coords`` (the numpy lexsort + segment-boundary
pipeline) against ``FiberTensor.from_coords_reference`` (the pre-PR
per-entry Python pipeline, kept as the differential oracle) at 1e4, 1e5
and 1e6 nnz, across the DCSR, CSR, and bitvector format mixes, plus one
``.mtx`` ingestion timing through :mod:`repro.data.io`.  The reference
path is skipped above ``--reference-cap`` nnz (default 1e5) to keep CI
runs short.

The structural-equality check (seg/crd/vals arrays identical between the
two paths) runs whenever both paths execute, so this benchmark is also
an end-to-end differential test at scales the unit tests do not reach.

Usage::

    PYTHONPATH=src python benchmarks/bench_formats.py [--rounds 3] [-o out.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

from repro.data.io import load_tensor, write_mtx
from repro.formats import FiberTensor

SIZES = (10_000, 100_000, 1_000_000)
FORMAT_MIXES = {
    "dcsr": ("compressed", "compressed"),
    "csr": ("dense", "compressed"),
    "bitvector": ("compressed", "bitvector"),
}


def make_coo(nnz: int, density: float = 0.01, seed: int = 0):
    """Seeded uniform COO matrix at *density* with exactly *nnz* entries."""
    rng = np.random.default_rng(seed)
    dim = int((nnz / density) ** 0.5)
    flat = rng.choice(dim * dim, size=nnz, replace=False)
    coords = np.column_stack([flat // dim, flat % dim]).astype(np.int64)
    values = rng.uniform(0.1, 1.0, size=nnz)
    return (dim, dim), coords, values


def _assert_same(fast: FiberTensor, slow: FiberTensor) -> None:
    assert np.array_equal(fast.vals, slow.vals), "value arrays differ"
    for la, lb in zip(fast.levels, slow.levels):
        assert la.format_name == lb.format_name
        if la.format_name == "compressed":
            assert np.array_equal(la.seg, lb.seg), "seg arrays differ"
            assert np.array_equal(la.crd, lb.crd), "crd arrays differ"
        elif la.format_name == "bitvector":
            # Compare the flat storage directly — the fibers_words
            # compatibility view would be slow at benchmark scale.
            assert np.array_equal(la._word_seg, lb._word_seg), \
                "bitvector word segments differ"
            assert np.array_equal(la._words, lb._words), \
                "bitvector words differ"


def _best(fn, rounds: int):
    """(best wall-clock, last constructed result) over *rounds* calls."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_bench(rounds: int = 3, reference_cap: int = 100_000) -> dict:
    cases = []
    for nnz in SIZES:
        shape, coords, values = make_coo(nnz)
        coords_list, values_list = coords.tolist(), values.tolist()
        for mix_name, formats in FORMAT_MIXES.items():
            # The bitvector mix spans the full column range per word, so
            # keep it to the smaller sizes (word count ~ fibers * cols / b).
            if mix_name == "bitvector" and nnz > 100_000:
                continue
            entry = {"nnz": nnz, "formats": mix_name}
            entry["vectorized_s"], fast = _best(
                lambda: FiberTensor.from_coords(shape, coords, values,
                                                formats=formats),
                rounds,
            )
            if nnz <= reference_cap:
                entry["reference_s"], slow = _best(
                    lambda: FiberTensor.from_coords_reference(
                        shape, coords_list, values_list, formats=formats
                    ),
                    max(1, rounds - 1),
                )
                entry["speedup"] = entry["reference_s"] / entry["vectorized_s"]
                _assert_same(fast, slow)
                entry["identical_to_reference"] = True
            cases.append(entry)

    # .mtx ingestion wall-clock at 1e5 nnz through the io layer.
    shape, coords, values = make_coo(100_000)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.mtx")
        from repro.data.io import CooTensor

        write_mtx(path, CooTensor(shape, coords, values))
        mtx_s, _ = _best(lambda: load_tensor(path), max(1, rounds - 1))
    speedups = [c["speedup"] for c in cases if "speedup" in c]
    summary = {
        "min_speedup": min(speedups) if speedups else None,
        "max_speedup": max(speedups) if speedups else None,
        "speedup_1e5_dcsr": next(
            (c["speedup"] for c in cases
             if c["nnz"] == 100_000 and c["formats"] == "dcsr"
             and "speedup" in c),
            None,
        ),
    }
    return {
        "rounds": rounds,
        "cases": cases,
        "mtx_ingest_1e5_s": mtx_s,
        "summary": summary,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per case (best is kept)")
    parser.add_argument("--reference-cap", type=int, default=100_000,
                        help="largest nnz at which the pure-Python "
                        "reference path is also timed")
    parser.add_argument("-o", "--output", default=None,
                        help="write JSON here instead of stdout")
    args = parser.parse_args(argv)
    payload = run_bench(rounds=args.rounds, reference_cap=args.reference_cap)
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    headline = payload["summary"]["speedup_1e5_dcsr"]
    if headline is not None and headline < 10.0:
        print("WARNING: 1e5-nnz DCSR speedup below the 10x acceptance bar",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation benchmarks: per-primitive throughput of the simulator.

Not a paper figure — these measure the Python simulator itself so
regressions in block implementations are visible (tokens processed per
second per block family).
"""

import numpy as np
import pytest

from repro.blocks import (
    ALU,
    Intersect,
    MergeSide,
    ScalarReducer,
    Sink,
    StreamFeeder,
    Union,
    VectorReducer,
    make_scanner,
)
from repro.formats import CompressedLevel
from repro.sim.engine import run_blocks
from repro.streams import Channel, DONE, Stop

N = 2000


def _long_fiber_tokens(n=N):
    return list(range(n)) + [Stop(0), DONE]


def test_scanner_throughput(benchmark):
    level = CompressedLevel.from_fibers([list(range(N))])

    def run():
        ref = Channel("r", kind="ref")
        crd, out_ref = Channel("c"), Channel("f", kind="ref")
        blocks = [
            StreamFeeder([0, DONE], ref),
            make_scanner(level, ref, crd, out_ref),
            Sink(crd, name="s1"),
            Sink(out_ref, name="s2"),
        ]
        return run_blocks(blocks).cycles

    cycles = benchmark(run)
    assert cycles >= N


def test_intersect_throughput(benchmark):
    tokens = _long_fiber_tokens()

    def run():
        ca, ra = Channel("ca"), Channel("ra", kind="ref")
        cb, rb = Channel("cb"), Channel("rb", kind="ref")
        oc = Channel("oc")
        oa, ob = Channel("oa", kind="ref"), Channel("ob", kind="ref")
        blocks = [
            StreamFeeder(tokens, ca, name="f1"),
            StreamFeeder(tokens, ra, name="f2"),
            StreamFeeder(tokens, cb, name="f3"),
            StreamFeeder(tokens, rb, name="f4"),
            Intersect([MergeSide(ca, [ra]), MergeSide(cb, [rb])], oc, [[oa], [ob]]),
            Sink(oc, name="s1"),
            Sink(oa, name="s2"),
            Sink(ob, name="s3"),
        ]
        return run_blocks(blocks).cycles

    benchmark(run)


def test_union_throughput(benchmark):
    evens = [2 * i for i in range(N // 2)] + [Stop(0), DONE]
    odds = [2 * i + 1 for i in range(N // 2)] + [Stop(0), DONE]

    def run():
        ca, ra = Channel("ca"), Channel("ra", kind="ref")
        cb, rb = Channel("cb"), Channel("rb", kind="ref")
        oc = Channel("oc")
        oa, ob = Channel("oa", kind="ref"), Channel("ob", kind="ref")
        blocks = [
            StreamFeeder(evens, ca, name="f1"),
            StreamFeeder(evens, ra, name="f2"),
            StreamFeeder(odds, cb, name="f3"),
            StreamFeeder(odds, rb, name="f4"),
            Union([MergeSide(ca, [ra]), MergeSide(cb, [rb])], oc, [[oa], [ob]]),
            Sink(oc, name="s1"),
            Sink(oa, name="s2"),
            Sink(ob, name="s3"),
        ]
        return run_blocks(blocks).cycles

    benchmark(run)


def test_alu_throughput(benchmark):
    vals = [float(i) for i in range(N)] + [Stop(0), DONE]

    def run():
        a, b, out = Channel("a"), Channel("b"), Channel("o")
        blocks = [
            StreamFeeder(vals, a, name="f1"),
            StreamFeeder(vals, b, name="f2"),
            ALU("mul", a, b, out),
            Sink(out),
        ]
        return run_blocks(blocks).cycles

    benchmark(run)


def test_reducer_throughput(benchmark):
    rng = np.random.default_rng(0)
    crd_tokens, val_tokens = [], []
    for _ in range(40):
        coords = sorted(rng.choice(100, size=30, replace=False).tolist())
        crd_tokens += coords + [Stop(1)]
        val_tokens += [1.0] * 30 + [Stop(1)]
    crd_tokens.append(DONE)
    val_tokens.append(DONE)

    def run():
        c, v = Channel("c"), Channel("v")
        oc, ov = Channel("oc"), Channel("ov")
        blocks = [
            StreamFeeder(crd_tokens, c, name="f1"),
            StreamFeeder(val_tokens, v, name="f2"),
            VectorReducer(c, v, oc, ov),
            Sink(oc, name="s1"),
            Sink(ov, name="s2"),
        ]
        return run_blocks(blocks).cycles

    benchmark(run)


def test_scalar_reducer_throughput(benchmark):
    tokens = []
    for _ in range(N // 10):
        tokens += [1.0] * 10 + [Stop(0)]
    tokens[-1] = Stop(1)
    tokens.append(DONE)

    def run():
        v, out = Channel("v"), Channel("o")
        blocks = [StreamFeeder(tokens, v), ScalarReducer(v, out), Sink(out)]
        return run_blocks(blocks).cycles

    benchmark(run)


# -- timed-plane scheduling primitives ----------------------------------
#
# The timed-batch and compiled backends spend their cycles in
# ``rate1_schedule`` (one max-plus pass per block window) and
# ``compose_rate1`` (one pass per fused chain).  The batch sizes below
# bracket the real workloads: empty windows (parked readers), single
# tokens (control events), and the 1e6-token windows the scaling
# benchmark produces.


def _timed_arrivals(n: int) -> np.ndarray:
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(3)
    # mixed gaps: some bunched arrivals (0), some spaced (up to 2), so
    # the accumulate in rate1_schedule is not a no-op
    return np.cumsum(rng.integers(0, 3, size=n)).astype(np.int64) + 1


@pytest.mark.parametrize("n", [0, 1, 1_000_000], ids=["empty", "one", "1e6"])
def test_rate1_schedule_throughput(benchmark, n):
    from repro.streams.timing import rate1_schedule

    arrivals = _timed_arrivals(n)
    sched = benchmark(rate1_schedule, arrivals, 5, 1)
    assert len(sched) == n
    if n > 1:
        assert (sched[1:] - sched[:-1] >= 1).all()


@pytest.mark.parametrize("n", [0, 1, 1_000_000], ids=["empty", "one", "1e6"])
def test_compose_rate1_throughput(benchmark, n):
    from repro.streams.timing import compose_rate1, rate1_schedule

    arrivals = _timed_arrivals(n)
    # a three-member value chain at rate 1 (the fused-SpMV shape): the
    # head pays the accumulate, the interior stages collapse to
    # elementwise maxima
    stages = [(5, 1, 0), (2, 1, 1), (0, 1, 0)]

    scheds = benchmark(compose_rate1, arrivals, stages)
    assert len(scheds) == len(stages)
    # bit-identical to the members' own back-to-back passes
    ref = rate1_schedule(arrivals, 5, 1)
    assert np.array_equal(scheds[0], ref)
    ref = rate1_schedule(ref + 1, 2, 1)
    assert np.array_equal(scheds[1], ref)
    assert np.array_equal(scheds[2], rate1_schedule(ref, 0, 1))

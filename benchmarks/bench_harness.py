"""Wall-clock benchmark of the sweep harness, emitting JSON.

Measures, for a representative sweep (fig11 + table2 at reduced scale):

* ``serial``  — cold run, ``jobs=1``, no cache;
* ``sharded`` — cold run, ``jobs=N``, fresh cache (fan-out win);
* ``replay``  — warm rerun over the populated cache (cache win).

Asserts that sharded payloads are bit-identical to serial ones and
reports the replay speedup (the acceptance bar is >= 5x; in practice it
is orders of magnitude).

Usage::

    PYTHONPATH=src python benchmarks/bench_harness.py [--jobs 4] [-o out.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro.harness import ResultCache, SweepRunner, get_study

#: (study, options) pairs forming the benchmark sweep
CASES = (
    ("fig11", {"size": 24, "k_sweep": (1, 4, 16)}),
    ("table2", {"distinct": 120, "total": 2000}),
)


def enumerate_all():
    specs = []
    for name, options in CASES:
        specs += get_study(name).enumerate(options=options)
    return specs


def timed_run(runner, specs):
    start = time.perf_counter()
    report = runner.run(specs)
    return time.perf_counter() - start, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args(argv)

    specs = enumerate_all()
    serial_s, serial = timed_run(SweepRunner(jobs=1), specs)

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        sharded_s, sharded = timed_run(
            SweepRunner(cache=cache, jobs=args.jobs), specs
        )
        replay_s, replay = timed_run(
            SweepRunner(cache=cache, jobs=args.jobs), specs
        )

    mismatches = sum(
        1 for a, b in zip(serial.results, sharded.results)
        if a.payload != b.payload
    )
    assert mismatches == 0, f"{mismatches} sharded payloads differ from serial"
    assert replay.executed == 0, "replay run executed points despite warm cache"

    summary = {
        "points": len(specs),
        "jobs": args.jobs,
        "serial_s": round(serial_s, 4),
        "sharded_s": round(sharded_s, 4),
        "replay_s": round(replay_s, 4),
        "sharded_speedup": round(serial_s / sharded_s, 2) if sharded_s else None,
        "replay_speedup": round(serial_s / replay_s, 2) if replay_s else None,
    }
    text = json.dumps(summary, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablations: Gamma-style lane scaling (section 4.4) and the Figure 9
tile-sequencing tradeoff (section 4.1 / 6.4)."""

import numpy as np

from repro.data.synthetic import random_sparse_matrix
from repro.kernels.gamma import gamma_spmm
from repro.memory import DramModel, tiled_spmm


def test_gamma_lane_scaling(benchmark):
    B = random_sparse_matrix(48, 32, 0.2, seed=0)
    C = random_sparse_matrix(32, 40, 0.2, seed=1)

    def run():
        return {lanes: gamma_spmm(B, C, lanes=lanes) for lanes in (1, 2, 4, 8)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'lanes':>6}{'cycles':>9}{'critical path':>15}")
    for lanes, result in results.items():
        assert np.allclose(result.output, B @ C)
        print(f"{lanes:>6}{result.cycles:>9}{result.critical_path:>15}")
    # The parallel critical path scales down near-linearly with lanes.
    assert results[4].critical_path < results[1].critical_path / 2.5
    assert results[2].critical_path < results[1].critical_path / 1.6


def test_tile_size_tradeoff(benchmark):
    B = random_sparse_matrix(32, 32, 0.12, seed=2)
    C = random_sparse_matrix(32, 32, 0.12, seed=3)

    def run():
        return {size: tiled_spmm(B, C, tile_size=size) for size in (4, 8, 16)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'tile':>6}{'pairs':>7}{'seq':>7}{'total':>9}")
    for size, result in results.items():
        assert np.allclose(result.output, B @ C)
        print(f"{size:>6}{len(result.pairs):>7}{result.sequencing_cycles:>7}"
              f"{result.total_cycles:>9.0f}")
    # Finer tiles sequence more pairs (section 4.1's sequencing overhead).
    assert len(results[4].pairs) > len(results[16].pairs)
    assert results[4].sequencing_cycles > results[16].sequencing_cycles


def test_bandwidth_bound_tiling(benchmark):
    B = random_sparse_matrix(32, 32, 0.15, seed=4)
    C = random_sparse_matrix(32, 32, 0.15, seed=5)

    def run():
        fast = tiled_spmm(B, C, tile_size=8)
        slow = tiled_spmm(B, C, tile_size=8, dram=DramModel(bytes_per_cycle=0.25))
        return fast, slow

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfast DRAM total={fast.total_cycles:.0f}, "
          f"slow DRAM total={slow.total_cycles:.0f}")
    # With n-buffering, slow DRAM shifts the bottleneck to loads.
    assert slow.total_cycles > 2 * fast.total_cycles

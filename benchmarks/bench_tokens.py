"""Token data-plane wall-clock: batched vs generator functional backend.

Times functional-backend SpMV (the iterate-locate kernel over a prebuilt
two-level FiberTensor) under the batched ``TokenBatch`` data plane
(``backend="functional"``) against the scalar/generator plane
(``backend="functional-seq"``, the differential oracle) at 1e4, 1e5 and
1e6 nnz.  Outputs are asserted **bit-identical** between the planes at
every size, so this benchmark doubles as a differential test at scales
the unit tests do not reach, and the 1e6-nnz row asserts the >= 5x
speedup the batch path exists for (``--min-speedup`` to override).

Usage::

    PYTHONPATH=src python benchmarks/bench_tokens.py [--rounds 3] [-o out.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.formats import FiberTensor
from repro.kernels import spmv_locate

SIZES = (10_000, 100_000, 1_000_000)

#: wall-clock gate asserted at the largest size (acceptance criterion of
#: the batched data plane); smaller sizes are reported but not gated —
#: fixed per-run overheads dominate there
MIN_SPEEDUP_AT_1E6 = 5.0


def make_matrix(nnz: int, seed: int = 0):
    """Seeded uniform sparse matrix with exactly *nnz* entries."""
    rng = np.random.default_rng(seed)
    dim = max(64, int((nnz * 10) ** 0.5))
    flat = rng.choice(dim * dim, size=nnz, replace=False)
    coords = np.column_stack([flat // dim, flat % dim]).astype(np.int64)
    values = rng.uniform(0.1, 1.0, size=nnz)
    tensor = FiberTensor.from_coords((dim, dim), coords, values, name="B")
    c = rng.uniform(0.1, 1.0, size=dim)
    return tensor, c


def _best(fn, rounds: int):
    best, result = None, None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run(rounds: int, seq_cap: int, min_speedup: float) -> dict:
    rows = []
    for nnz in SIZES:
        tensor, c = make_matrix(nnz)
        t_batch, out_batch = _best(
            lambda: spmv_locate(tensor, c, backend="functional"), rounds
        )
        row = {
            "nnz": nnz,
            "batch_seconds": round(t_batch, 6),
            "generator_seconds": None,
            "speedup": None,
            "bit_identical": None,
        }
        if nnz <= seq_cap:
            t_seq, out_seq = _best(
                lambda: spmv_locate(tensor, c, backend="functional-seq"), rounds
            )
            identical = (
                list(out_batch[0]) == list(out_seq[0])
                and list(out_batch[1]) == list(out_seq[1])
            )
            assert identical, f"batch/generator outputs diverge at nnz={nnz}"
            row.update(
                generator_seconds=round(t_seq, 6),
                speedup=round(t_seq / t_batch, 2),
                bit_identical=identical,
            )
            if nnz >= 1_000_000 and row["speedup"] < min_speedup:
                raise SystemExit(
                    f"batch plane only {row['speedup']}x over the generator "
                    f"at nnz={nnz} (need >= {min_speedup}x)"
                )
        rows.append(row)
        print(
            f"nnz={nnz:>9,}  batch={row['batch_seconds']:.3f}s  "
            f"generator={row['generator_seconds']}s  "
            f"speedup={row['speedup']}x  identical={row['bit_identical']}",
            file=sys.stderr,
        )
    return {"benchmark": "tokens", "kernel": "spmv_locate", "rows": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--seq-cap", type=int, default=max(SIZES),
        help="skip the generator plane above this nnz (keeps quick runs short)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP_AT_1E6,
        help="required batch-vs-generator speedup at 1e6 nnz",
    )
    parser.add_argument("-o", "--output", default=None)
    args = parser.parse_args(argv)
    payload = run(args.rounds, args.seq_cap, args.min_speedup)
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark: regenerate Figure 12 (SpM*SpM dataflow ordering)."""

from benchmarks.conftest import full_scale
from repro.studies.fig12 import family_means, format_fig12, run_fig12


def test_fig12_dataflow_orders(benchmark):
    if full_scale():
        params = dict(i=250, j=250, k=100)
    else:
        params = dict(i=60, j=60, k=24)
    points = benchmark.pedantic(
        lambda: run_fig12(**params), rounds=1, iterations=1
    )
    print()
    print(format_fig12(points))
    assert all(p.correct for p in points)
    means = family_means(points)
    # "the inner-product algorithms (ijk, jik) perform the worst ... the
    # linear combination of rows and outer product algorithms perform at
    # least an order of magnitude better"
    assert means["inner product"] > 5 * means["linear combination of rows"]
    assert means["inner product"] > 5 * means["outer product"]
    # Orders within a family behave alike.
    by_order = {p.order: p.cycles for p in points}
    assert abs(by_order["ijk"] - by_order["jik"]) < 0.2 * by_order["ijk"]

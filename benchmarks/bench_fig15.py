"""Benchmark: regenerate Figure 15 (ExTensor recreation).

The full paper sweep (12 dimensions x 4 nnz values) takes minutes; the
default benchmark runs the "few points" subset the paper's artifact also
offers, covering all three performance regions.  Set REPRO_FULL_SCALE=1
for the complete sweep.
"""

from benchmarks.conftest import full_scale
from repro.studies.fig15 import PAPER_DIMENSIONS, format_fig15, regions, run_fig15


def test_fig15_extensor_recreation(benchmark):
    if full_scale():
        dimensions, nnzs = PAPER_DIMENSIONS, (5000, 10000, 25000, 50000)
    else:
        dimensions, nnzs = (1024, 3696, 7704, 11712, 15720), (5000, 10000)
    points = benchmark.pedantic(
        lambda: run_fig15(dimensions=dimensions, nnzs=nnzs), rounds=1, iterations=1
    )
    print()
    print(format_fig15(points))
    # Region structure: runtime rises at small dimensions...
    for nnz in nnzs:
        series = sorted(
            [p for p in points if p.nnz == nnz], key=lambda p: p.dimension
        )
        assert series[1].cycles > series[0].cycles
    # ...and the sparsest series has peaked and turned down in range
    # (sparse tile skipping), per the paper's three regions.
    rises, falls = regions(points, min(nnzs))
    assert rises and falls
    # More nonzeros means more work at every dimension.
    lo, hi = min(nnzs), max(nnzs)
    for dim in dimensions:
        lo_c = next(p.cycles for p in points if p.nnz == lo and p.dimension == dim)
        hi_c = next(p.cycles for p in points if p.nnz == hi and p.dimension == dim)
        assert hi_c >= lo_c * 0.9

"""Benchmark: regenerate Figure 13 (iteration acceleration techniques)."""

from repro.studies.fig13 import format_fig13, run_fig13a, run_fig13b, run_fig13c


def _series(points, config):
    return {p.x: p.cycles for p in points if p.config == config}


def test_fig13a_sparsity_sweep(benchmark):
    points = benchmark.pedantic(run_fig13a, rounds=1, iterations=1)
    print()
    print(format_fig13(points))
    assert all(p.correct for p in points)
    crd = _series(points, "crd")
    skip = _series(points, "crd_skip")
    bv = _series(points, "bv")
    dense = _series(points, "dense")
    # Dense iteration is flat and worst at high sparsity.
    assert dense[20] > 10 * crd[20]
    # "coordinate-skipping behaves exactly the same as the compressed
    # format since urandom tensors have small run lengths"
    for x in crd:
        assert abs(crd[x] - skip[x]) <= 0.05 * crd[x] + 2
    # "As the sparsity increases, the compressed coordinate format becomes
    # better than the bitvectors" (bv is pseudo-dense).
    assert crd[5] < bv[5]
    assert bv[400] < crd[400]


def test_fig13b_run_length_sweep(benchmark):
    points = benchmark.pedantic(run_fig13b, rounds=1, iterations=1)
    print()
    print(format_fig13(points))
    assert all(p.correct for p in points)
    crd = _series(points, "crd")
    skip = _series(points, "crd_skip")
    bv = _series(points, "bv")
    # "As run lengths increase, there are more opportunities to skip."
    assert skip[128] < 0.5 * crd[128]
    # "The bitvector remains flat since the number of nonzeros remains
    # about the same for various run lengths."
    assert max(bv.values()) - min(bv.values()) <= 0.2 * max(bv.values())


def test_fig13c_block_size_sweep(benchmark):
    points = benchmark.pedantic(run_fig13c, rounds=1, iterations=1)
    print()
    print(format_fig13(points))
    assert all(p.correct for p in points)
    crd = _series(points, "crd")
    skip = _series(points, "crd_skip")
    # "This advantage ... remains in the blocks case, without the
    # dependence on block size": skipping never loses to plain crd.
    for x in crd:
        assert skip[x] <= crd[x] + 2

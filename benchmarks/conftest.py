"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper and prints
the rows/series the paper reports (captured with ``pytest -s`` or in the
benchmark summary).  Scales default to quick-run sizes; set
``REPRO_FULL_SCALE=1`` to use paper-scale parameters where feasible.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


@pytest.fixture
def scale():
    return "full" if full_scale() else "quick"
